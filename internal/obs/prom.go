package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file maps the obs registry onto the Prometheus text exposition
// format, version 0.0.4 (the `text/plain; version=0.0.4` media type), with
// no dependency on the Prometheus client library.
//
// Metric names in obs are `/`-separated paths, optionally carrying an
// explicit label block as a literal suffix:
//
//	serve/http/latency_ns{endpoint="predict"}
//
// Exposition mapping, applied uniformly:
//
//   - The base name (path minus label block) becomes
//     `linkpred_<path with illegal runes replaced by '_'>`, so a stable
//     Prometheus family collects every label set recorded under it.
//   - Names following the predict-registry convention `predict/<Alg>/<m>`
//     fold the algorithm segment into an `alg` label: family
//     `linkpred_predict_<m>{alg="<Alg>"}`. This keeps the per-algorithm
//     families stable as algorithms come and go.
//   - Counters gain the conventional `_total` suffix. Histograms emit
//     cumulative `_bucket{le=...}` series (from the log2 buckets), `_sum`
//     and `_count`, plus `_p50`/`_p95`/`_p99` gauge families estimated by
//     Histogram.Quantile. Rolling windows emit a `_window_*` gauge family
//     (count, rate, quantiles). Worker chunk claims emit one counter family
//     labeled by worker slot.

// PromContentType is the Content-Type of the Prometheus text exposition.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// splitPromName splits an obs metric name into its family base path and
// label block (without braces), applying the predict/<alg>/<metric>
// convention.
func splitPromName(name string) (base, labels string) {
	base = name
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		base, labels = name[:i], name[i+1:len(name)-1]
	}
	if labels == "" {
		if parts := strings.Split(base, "/"); len(parts) == 3 && parts[0] == "predict" {
			base = "predict/" + parts[2]
			labels = `alg="` + escapeLabelValue(parts[1]) + `"`
		}
	}
	return base, labels
}

// promFamilyName sanitizes a base path into a legal Prometheus metric name.
func promFamilyName(base string) string {
	var b strings.Builder
	b.WriteString("linkpred_")
	for _, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatPromValue renders a sample value; Prometheus accepts Go's 'g'
// formatting including +Inf/-Inf/NaN.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily accumulates the rendered sample lines of one metric family.
type promFamily struct {
	typ  string // counter | gauge | histogram
	help string
	rows []string
}

// promDoc collects families, keyed and emitted in sorted order.
type promDoc struct {
	fams map[string]*promFamily
}

func (d *promDoc) family(name, typ, help string) *promFamily {
	f, ok := d.fams[name]
	if !ok {
		f = &promFamily{typ: typ, help: help}
		d.fams[name] = f
	}
	return f
}

// row appends one sample line to a family, merging the family's label
// block with extra labels (e.g. le or quantile suffix labels).
func (f *promFamily) row(name, labels, extra string, value string) {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all != "" {
		f.rows = append(f.rows, name+"{"+all+"} "+value)
	} else {
		f.rows = append(f.rows, name+" "+value)
	}
}

// WritePrometheus renders the current telemetry state (counters, gauges,
// histograms with quantile estimates, rolling windows, and the worker
// chunk-claim vector) in the Prometheus text exposition format.
func WritePrometheus(w io.Writer) error {
	d := Snapshot()
	doc := &promDoc{fams: map[string]*promFamily{}}

	enabled := doc.family("linkpred_telemetry_enabled", "gauge", "whether obs collection is on")
	v := "0"
	if d.Enabled {
		v = "1"
	}
	enabled.row("linkpred_telemetry_enabled", "", "", v)

	for _, name := range sortedKeys(d.Counters) {
		base, labels := splitPromName(name)
		fam := promFamilyName(base) + "_total"
		f := doc.family(fam, "counter", "obs counter "+base)
		f.row(fam, labels, "", strconv.FormatInt(d.Counters[name], 10))
	}
	for _, name := range sortedKeys(d.Gauges) {
		base, labels := splitPromName(name)
		fam := promFamilyName(base)
		f := doc.family(fam, "gauge", "obs gauge "+base)
		f.row(fam, labels, "", formatPromValue(d.Gauges[name]))
	}
	for _, name := range sortedKeys(d.Histograms) {
		base, labels := splitPromName(name)
		fam := promFamilyName(base)
		h := d.Histograms[name]
		f := doc.family(fam, "histogram", "obs histogram "+base)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			f.row(fam+"_bucket", labels, `le="`+strconv.FormatInt(b.Le, 10)+`"`, strconv.FormatInt(cum, 10))
		}
		f.row(fam+"_bucket", labels, `le="+Inf"`, strconv.FormatInt(h.Count, 10))
		f.row(fam+"_sum", labels, "", strconv.FormatInt(h.Sum, 10))
		f.row(fam+"_count", labels, "", strconv.FormatInt(h.Count, 10))
		for _, q := range []struct {
			suffix string
			v      int64
		}{{"_p50", h.P50}, {"_p95", h.P95}, {"_p99", h.P99}} {
			qf := doc.family(fam+q.suffix, "gauge", "estimated quantile of obs histogram "+base)
			qf.row(fam+q.suffix, labels, "", strconv.FormatInt(q.v, 10))
		}
	}
	for _, name := range sortedRollingKeys(d.Rolling) {
		base, labels := splitPromName(name)
		fam := promFamilyName(base) + "_window"
		r := d.Rolling[name]
		for _, g := range []struct {
			suffix string
			v      float64
		}{
			{"_seconds", r.WindowSeconds},
			{"_count", float64(r.Count)},
			{"_rate", r.Rate},
			{"_p50", float64(r.P50)},
			{"_p95", float64(r.P95)},
			{"_p99", float64(r.P99)},
		} {
			gf := doc.family(fam+g.suffix, "gauge", "sliding window of obs metric "+base)
			gf.row(fam+g.suffix, labels, "", formatPromValue(g.v))
		}
	}
	if len(d.WorkerChunkClaims) > 0 {
		fam := "linkpred_engine_worker_chunk_claims_total"
		f := doc.family(fam, "counter", "engine chunks claimed per worker slot")
		for i, n := range d.WorkerChunkClaims {
			f.row(fam, `worker="`+strconv.Itoa(i)+`"`, "", strconv.FormatInt(n, 10))
		}
	}

	names := make([]string, 0, len(doc.fams))
	for name := range doc.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := doc.fams[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.typ)
		for _, row := range f.rows {
			bw.WriteString(row)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedRollingKeys exists because Go's generics cannot unify the two map
// value types at the call sites above without an explicit instantiation.
func sortedRollingKeys(m map[string]RollingSnapshot) []string {
	return sortedKeys(m)
}

// LintPrometheus parses a text exposition and returns an error describing
// the first violation found: illegal metric or label names, malformed
// sample lines, samples whose family lacks a TYPE declaration, or
// histogram families with missing/non-cumulative buckets. It is the
// parse-it-back check used by the exposition tests and by cmd/promlint in
// the CI scrape smoke.
func LintPrometheus(data []byte) error {
	types := map[string]string{} // family -> type
	// First pass: collect TYPE declarations (they are required to precede
	// samples of their family; verified in the second pass).
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	samples := 0
	seenType := map[string]bool{}
	type bucket struct {
		le  float64
		cum float64
	}
	buckets := map[string][]bucket{} // histogram family+labels(minus le) -> buckets in order
	counts := map[string]float64{}   // histogram family+labels -> _count value
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				if !legalMetricName(fields[2]) {
					return fmt.Errorf("line %d: illegal metric name %q in TYPE", lineNo, fields[2])
				}
				switch t := fields[3]; t {
				case "counter", "gauge", "histogram", "summary", "untyped":
					if seenType[fields[2]] {
						return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
					}
					seenType[fields[2]] = true
					types[fields[2]] = t
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
				}
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		samples++
		fam, isBucket := sampleFamily(name, types)
		if fam == "" {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if types[fam] == "histogram" {
			key := fam + "|" + stripLabel(labels, "le")
			switch {
			case isBucket:
				le := math.Inf(1)
				if raw, ok := labelValue(labels, "le"); !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				} else if raw != "+Inf" {
					le, err = strconv.ParseFloat(raw, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q", lineNo, raw)
					}
				}
				buckets[key] = append(buckets[key], bucket{le: le, cum: value})
			case strings.HasSuffix(name, "_count"):
				counts[key] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for key, bs := range buckets {
		last := math.Inf(-1)
		cum := math.Inf(-1)
		hasInf := false
		for _, b := range bs {
			if b.le <= last {
				return fmt.Errorf("histogram %s: le bounds not increasing", key)
			}
			if b.cum < cum {
				return fmt.Errorf("histogram %s: bucket counts not cumulative", key)
			}
			last, cum = b.le, b.cum
			if math.IsInf(b.le, 1) {
				hasInf = true
			}
		}
		if !hasInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", key)
		}
		if c, ok := counts[key]; !ok {
			return fmt.Errorf("histogram %s: missing _count", key)
		} else if c != bs[len(bs)-1].cum {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", key, c, bs[len(bs)-1].cum)
		}
	}
	return nil
}

// sampleFamily resolves the family a sample line belongs to: the name
// itself, or the name minus a histogram/summary suffix. The second return
// reports a histogram _bucket sample.
func sampleFamily(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, false
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base, suf == "_bucket"
			}
		}
	}
	return "", false
}

func legalMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func legalLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// promLabel is one parsed label of a sample line.
type promLabel struct{ name, value string }

// parsePromSample parses `name[{labels}] value [timestamp]`.
func parsePromSample(line string) (name string, labels []promLabel, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !legalMetricName(name) {
		return "", nil, 0, fmt.Errorf("illegal metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return "", nil, 0, err
		}
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample value in %q", line)
	}
	switch fields[0] {
	case "+Inf":
		value = math.Inf(1)
	case "-Inf":
		value = math.Inf(-1)
	case "NaN":
		value = math.NaN()
	default:
		value, err = strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return "", nil, 0, fmt.Errorf("bad sample value %q", fields[0])
		}
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels parses a `{name="value",...}` block, handling escaped quotes.
func parseLabels(s string) (labels []promLabel, rest string, err error) {
	if s == "" || s[0] != '{' {
		return nil, s, fmt.Errorf("expected label block")
	}
	s = s[1:]
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, s, fmt.Errorf("malformed label block")
		}
		lname := strings.TrimSpace(s[:eq])
		if !legalLabelName(lname) {
			return nil, s, fmt.Errorf("illegal label name %q", lname)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, s, fmt.Errorf("label %s: unquoted value", lname)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, s, fmt.Errorf("label %s: unterminated value", lname)
			}
			c := s[0]
			if c == '\\' {
				if len(s) < 2 {
					return nil, s, fmt.Errorf("label %s: dangling escape", lname)
				}
				switch s[1] {
				case '\\', '"':
					val.WriteByte(s[1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, s, fmt.Errorf("label %s: bad escape \\%c", lname, s[1])
				}
				s = s[2:]
				continue
			}
			if c == '"' {
				s = s[1:]
				break
			}
			val.WriteByte(c)
			s = s[1:]
		}
		labels = append(labels, promLabel{name: lname, value: val.String()})
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

// labelValue extracts one label's raw value from an inner label block
// string (as stored by the lint bucket pass).
func labelValue(labels []promLabel, name string) (string, bool) {
	for _, l := range labels {
		if l.name == name {
			return l.value, true
		}
	}
	return "", false
}

// stripLabel renders a label list minus one label, as a canonical key.
func stripLabel(labels []promLabel, drop string) string {
	var b strings.Builder
	for _, l := range labels {
		if l.name == drop {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.name)
		b.WriteByte('=')
		b.WriteString(l.value)
	}
	return b.String()
}

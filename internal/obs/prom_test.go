package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the Prometheus exposition golden file")

// populateFixture fills the registry with one deterministic instance of
// every metric kind the exposition renders: a plain counter, a labeled
// counter, a predict-convention counter, set and callback gauges, a
// labeled histogram, and a rolling window driven by a frozen clock.
func populateFixture() {
	GetCounter("serve/deadline_exceeded").Add(3)
	GetCounter(`liveeval/hits{alg="CN"}`).Add(7)
	GetCounter("predict/CN/pairs_scored").Add(1234)

	GetGauge("serve/snapshot_seq").Set(5)
	GetGauge(`serve/http/in_flight{endpoint="predict"}`).Set(2)
	SetGaugeFunc("serve/queue_len", func() float64 { return 4 })

	h := GetHistogram(`serve/http/latency_ns{endpoint="predict"}`)
	for _, v := range []int64{100, 200, 400, 800, 1600, 3200} {
		h.Observe(v)
	}

	r := GetRolling(`serve/http/latency_ns{endpoint="predict"}`, time.Minute)
	for _, v := range []int64{100, 200, 400, 800} {
		r.Add(v)
	}
}

// TestWritePrometheusGolden renders a fixed registry state and compares it
// byte-for-byte against testdata/metrics.golden.prom (regenerate with
// `go test ./internal/obs -run Golden -update`). The golden output is also
// required to pass LintPrometheus — the parse-it-back check — so the file
// doubles as a pinned example of the exposition contract: family naming,
// label conventions, cumulative buckets, quantile gauge families.
func TestWritePrometheusGolden(t *testing.T) {
	Reset()
	Enable(true)
	base := int64(1_700_000_000_000_000_000)
	SetRollingClock(func() int64 { return base })
	defer func() {
		SetRollingClock(nil)
		Enable(false)
		Reset()
	}()
	populateFixture()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := buf.Bytes()

	if err := LintPrometheus(got); err != nil {
		t.Fatalf("exposition does not lint: %v", err)
	}

	golden := filepath.Join("testdata", "metrics.golden.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition drifted from golden file; run with -update if intended.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPromNameMapping pins the two label conventions: explicit {label}
// suffixes pass through, and predict/<Alg>/<metric> folds the algorithm
// into an alg label on a stable family.
func TestPromNameMapping(t *testing.T) {
	for _, tc := range []struct {
		in, base, labels string
	}{
		{`serve/http/latency_ns{endpoint="predict"}`, "serve/http/latency_ns", `endpoint="predict"`},
		{"predict/CN/pairs_scored", "predict/pairs_scored", `alg="CN"`},
		{"predict/KatzSC/predict_ns", "predict/predict_ns", `alg="KatzSC"`},
		{"serve/deadline_exceeded", "serve/deadline_exceeded", ""},
		{"engine/topk/heap_size", "engine/topk/heap_size", ""},
	} {
		base, labels := splitPromName(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Errorf("splitPromName(%q) = (%q, %q), want (%q, %q)", tc.in, base, labels, tc.base, tc.labels)
		}
	}
	if got := promFamilyName("serve/http/latency_ns"); got != "linkpred_serve_http_latency_ns" {
		t.Errorf("promFamilyName = %q", got)
	}
}

// TestLintPrometheusRejects feeds the linter representative violations; a
// linter that cannot fail would make the golden round-trip vacuous.
func TestLintPrometheusRejects(t *testing.T) {
	for _, tc := range []struct {
		name, in, wantErr string
	}{
		{"no samples", "# TYPE x counter\n", "no samples"},
		{"sample without TYPE", "linkpred_x_total 1\n", "no TYPE"},
		{"illegal name", "# TYPE linkpred_x gauge\nlinkpred_x 1\n9bad 2\n", "illegal metric name"},
		{"illegal TYPE name", "# TYPE 9bad counter\n9bad_total 1\n", "illegal metric name"},
		{"bad value", "# TYPE linkpred_x gauge\nlinkpred_x hello\n", "bad sample value"},
		{"unterminated label", "# TYPE linkpred_x gauge\nlinkpred_x{a=\"b 1\n", "unterminated"},
		{
			"non-cumulative buckets",
			"# TYPE linkpred_h histogram\n" +
				`linkpred_h_bucket{le="1"} 5` + "\n" +
				`linkpred_h_bucket{le="2"} 3` + "\n" +
				`linkpred_h_bucket{le="+Inf"} 5` + "\n" +
				"linkpred_h_sum 10\nlinkpred_h_count 5\n",
			"not cumulative",
		},
		{
			"missing +Inf bucket",
			"# TYPE linkpred_h histogram\n" +
				`linkpred_h_bucket{le="1"} 5` + "\n" +
				"linkpred_h_sum 10\nlinkpred_h_count 5\n",
			"missing +Inf",
		},
		{
			"count disagrees with +Inf",
			"# TYPE linkpred_h histogram\n" +
				`linkpred_h_bucket{le="+Inf"} 5` + "\n" +
				"linkpred_h_sum 10\nlinkpred_h_count 6\n",
			"_count",
		},
	} {
		err := LintPrometheus([]byte(tc.in))
		if err == nil {
			t.Errorf("%s: lint accepted invalid input", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestLintPrometheusAcceptsEscapes covers label values with escaped quotes
// and backslashes, which the serve layer can produce via %q formatting.
func TestLintPrometheusAcceptsEscapes(t *testing.T) {
	in := "# TYPE linkpred_x_total counter\n" +
		`linkpred_x_total{a="q\"uote",b="back\\slash",c="new\nline"} 1` + "\n"
	if err := LintPrometheus([]byte(in)); err != nil {
		t.Fatalf("lint rejected escaped labels: %v", err)
	}
}

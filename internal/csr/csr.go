// Package csr provides the degree-ordered adjacency view behind the
// candidate-generation engine: a degree-descending relabeling of a snapshot
// (rank 0 = highest degree, the canonical supernode order) plus dense
// neighbor bitsets for the hub block — the top-ranked nodes whose adjacency
// is large enough that bit tests and word-wise intersection beat sorted-list
// merging.
//
// A snapshot's adjacency slices are already CSR-shaped (sorted, contiguous
// per node); what this layer adds is the rank permutation and the hub-block
// bitsets. Bit positions are ORIGINAL node IDs, deliberately: every
// float-accumulating scoring path in this repository folds witness weights
// in ascending original-ID order to stay bit-identical to its reference
// implementation, and iterating a bitset row ascending preserves exactly
// that order. A rank-space bit layout would be denser for hub–hub rows but
// would reorder float folds and break the determinism contract.
//
// Views are deterministic functions of the graph and the budget, safe for
// concurrent read-only use, and are cached per snapshot via
// internal/snapcache.
package csr

import (
	"cmp"
	"math/bits"
	"slices"

	"linkpred/internal/graph"
)

// DefaultHubBudget bounds the hub-block bitset memory per snapshot, in
// bytes. 32 MiB holds ~2500 hub rows at 10⁵ nodes and ~250 at 10⁶ — in a
// power-law graph that covers the supernodes that dominate intersection
// cost while staying far below the adjacency itself.
const DefaultHubBudget = 32 << 20

// MinHubDegree is the degree below which a node never gets a bitset row:
// merging a short sorted list is already cheap, so a row would spend a full
// n-bit allocation to accelerate nothing.
const MinHubDegree = 64

// View is the degree-ordered relabeling and hub block of one snapshot.
type View struct {
	// Order maps rank -> original ID: degree descending, ties by ascending
	// ID — the same canonical supernode order as snapcache.DegreeOrder.
	Order []graph.NodeID
	// Rank maps original ID -> rank (inverse of Order).
	Rank []int32
	// Hubs is the number of leading ranks with bitset rows.
	Hubs int

	words int
	bits  []uint64
}

// Bits is one hub's dense neighbor set. Bit positions are original node
// IDs; iterating set bits ascending yields neighbors in ascending ID order.
type Bits []uint64

// Build constructs the view for g, spending at most hubBudget bytes on hub
// bitset rows (DefaultHubBudget when <= 0). The result depends only on g
// and the budget.
func Build(g *graph.Graph, hubBudget int) *View {
	if hubBudget <= 0 {
		hubBudget = DefaultHubBudget
	}
	n := g.NumNodes()
	v := &View{
		Order: make([]graph.NodeID, n),
		Rank:  make([]int32, n),
		words: (n + 63) / 64,
	}
	for i := range v.Order {
		v.Order[i] = graph.NodeID(i)
	}
	slices.SortStableFunc(v.Order, func(a, b graph.NodeID) int {
		if c := cmp.Compare(g.Degree(b), g.Degree(a)); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	for r, u := range v.Order {
		v.Rank[u] = int32(r)
	}
	// Hub rows: as many leading ranks as the budget allows, stopping at the
	// first node too small to profit from a dense row.
	hubs := 0
	if v.words > 0 {
		hubs = hubBudget / (v.words * 8)
	}
	if hubs > n {
		hubs = n
	}
	for hubs > 0 && g.Degree(v.Order[hubs-1]) < MinHubDegree {
		hubs--
	}
	// Partitioned snapshots materialize truncated frontier rows, so a hub
	// bitset would encode an incomplete neighbor set; the order and ranks
	// above depend only on the (global, exact) degree table and stay
	// identical to the full snapshot's, but the hub block is disabled.
	if g.Partition() != nil {
		hubs = 0
	}
	v.Hubs = hubs
	if hubs > 0 {
		v.bits = make([]uint64, hubs*v.words)
		for r := 0; r < hubs; r++ {
			row := v.bits[r*v.words : (r+1)*v.words]
			for _, w := range g.Neighbors(v.Order[r]) {
				row[w>>6] |= 1 << (uint(w) & 63)
			}
		}
	}
	return v
}

// Words returns the per-row word count of the hub bitsets.
func (v *View) Words() int { return v.words }

// IsHub reports whether u has a bitset row.
func (v *View) IsHub(u graph.NodeID) bool { return int(v.Rank[u]) < v.Hubs }

// HubBits returns u's neighbor bitset, or nil when u is not a hub. The row
// is shared and must not be modified.
func (v *View) HubBits(u graph.NodeID) Bits {
	r := int(v.Rank[u])
	if r >= v.Hubs {
		return nil
	}
	return Bits(v.bits[r*v.words : (r+1)*v.words])
}

// Has reports whether node id is set.
func (b Bits) Has(id graph.NodeID) bool {
	return b[id>>6]&(1<<(uint(id)&63)) != 0
}

// AndCount returns the population count of a AND b — the common-neighbor
// count of two hubs — without materializing the intersection.
func AndCount(a, b Bits) int {
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// AndIter calls fn for every node set in both a and b, in ascending ID
// order — the witness order every float-accumulating scorer requires.
func AndIter(a, b Bits, fn func(graph.NodeID)) {
	for i, w := range a {
		w &= b[i]
		base := graph.NodeID(i << 6)
		for w != 0 {
			fn(base + graph.NodeID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

package csr

import (
	"math/rand"
	"slices"
	"testing"

	"linkpred/internal/graph"
)

// hubbyGraph builds a deterministic power-law-ish graph: a few dense hubs
// wired to most of the node set plus random low-degree filler edges.
func hubbyGraph(t *testing.T, n, hubs int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for h := 0; h < hubs; h++ {
		for v := hubs; v < n; v++ {
			if rng.Intn(hubs+1) <= h {
				edges = append(edges, graph.Edge{U: graph.NodeID(h), V: graph.NodeID(v)})
			}
		}
	}
	for i := 0; i < n; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.Build(n, edges)
}

func TestBuildOrderIsCanonical(t *testing.T) {
	g := hubbyGraph(t, 500, 4, 1)
	v := Build(g, 0)
	if len(v.Order) != g.NumNodes() || len(v.Rank) != g.NumNodes() {
		t.Fatalf("order/rank sizes = %d/%d, want %d", len(v.Order), len(v.Rank), g.NumNodes())
	}
	for r := 1; r < len(v.Order); r++ {
		a, b := v.Order[r-1], v.Order[r]
		da, db := g.Degree(a), g.Degree(b)
		if da < db || (da == db && a > b) {
			t.Fatalf("order not degree-desc/id-asc at rank %d: node %d (deg %d) before node %d (deg %d)", r, a, da, b, db)
		}
	}
	for r, u := range v.Order {
		if int(v.Rank[u]) != r {
			t.Fatalf("Rank[%d] = %d, want %d", u, v.Rank[u], r)
		}
	}
}

func TestHubBitsMatchAdjacency(t *testing.T) {
	g := hubbyGraph(t, 800, 6, 2)
	v := Build(g, 0)
	if v.Hubs == 0 {
		t.Fatal("expected at least one hub row")
	}
	for r := 0; r < v.Hubs; r++ {
		u := v.Order[r]
		if g.Degree(u) < MinHubDegree {
			t.Fatalf("hub %d has degree %d < MinHubDegree", u, g.Degree(u))
		}
		b := v.HubBits(u)
		if b == nil {
			t.Fatalf("HubBits(%d) = nil for hub rank %d", u, r)
		}
		var got []graph.NodeID
		for id := graph.NodeID(0); int(id) < g.NumNodes(); id++ {
			if b.Has(id) {
				got = append(got, id)
			}
		}
		if !slices.Equal(got, g.Neighbors(u)) {
			t.Fatalf("bitset row of node %d disagrees with adjacency", u)
		}
	}
	if nonHub := v.Order[len(v.Order)-1]; v.HubBits(nonHub) != nil && v.Hubs < g.NumNodes() {
		t.Fatalf("HubBits for non-hub %d should be nil", nonHub)
	}
}

func TestHubBudgetLimitsRows(t *testing.T) {
	g := hubbyGraph(t, 1000, 8, 3)
	// Budget for exactly three rows.
	words := (g.NumNodes() + 63) / 64
	v := Build(g, 3*words*8)
	if v.Hubs > 3 {
		t.Fatalf("Hubs = %d, want <= 3 under a 3-row budget", v.Hubs)
	}
	if v.Words() != words {
		t.Fatalf("Words() = %d, want %d", v.Words(), words)
	}
}

func TestAndCountAndIterMatchMerge(t *testing.T) {
	g := hubbyGraph(t, 600, 5, 4)
	v := Build(g, 0)
	if v.Hubs < 2 {
		t.Fatal("need at least two hubs")
	}
	for i := 0; i < v.Hubs; i++ {
		for j := i + 1; j < v.Hubs; j++ {
			u, w := v.Order[i], v.Order[j]
			a, b := v.HubBits(u), v.HubBits(w)
			want := g.CommonNeighbors(u, w)
			if got := AndCount(a, b); got != len(want) {
				t.Fatalf("AndCount(%d,%d) = %d, want %d", u, w, got, len(want))
			}
			var got []graph.NodeID
			AndIter(a, b, func(id graph.NodeID) { got = append(got, id) })
			if !slices.Equal(got, want) {
				t.Fatalf("AndIter(%d,%d) order/content mismatch", u, w)
			}
		}
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 3} {
		g := graph.Build(n, nil)
		v := Build(g, 0)
		if v.Hubs != 0 {
			t.Fatalf("n=%d: Hubs = %d, want 0 (all degrees < MinHubDegree)", n, v.Hubs)
		}
		if len(v.Order) != n {
			t.Fatalf("n=%d: len(Order) = %d", n, len(v.Order))
		}
	}
}

// Package linkpred is an empirical link prediction toolkit for dynamic
// networks, reproducing "Network Growth and Link Prediction Through an
// Empirical Lens" (IMC 2016). It bundles:
//
//   - a timestamped dynamic-graph substrate with constant-delta snapshot
//     sequencing (internal/graph);
//   - synthetic generators for Facebook-, Renren- and YouTube-like growth
//     traces (internal/gen);
//   - the paper's 14 metric-based link prediction algorithms and the
//     random baseline (internal/predict);
//   - from-scratch classifiers (SVM, logistic regression, naive Bayes,
//     decision tree, random forest) and the snowball-sampled
//     classification pipeline (internal/ml, internal/classify);
//   - temporal analysis and the §6 temporal filters (internal/temporal);
//   - the §6.3 time-series comparator (internal/timeseries);
//   - runners regenerating every table and figure of the paper's
//     evaluation (internal/experiments), benchmarked in bench_test.go.
//
// This file is the stable public facade; examples/ and cmd/ build only on
// the names exported here plus the experiment runners.
package linkpred

import (
	"fmt"

	"linkpred/internal/classify"
	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/ml"
	"linkpred/internal/predict"
	"linkpred/internal/temporal"
)

// Core graph types.
type (
	// Graph is an immutable network snapshot.
	Graph = graph.Graph
	// Trace is a timestamped dynamic-network history.
	Trace = graph.Trace
	// Edge is a single timestamped link-creation event.
	Edge = graph.Edge
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// SnapshotCut marks a snapshot boundary in a trace.
	SnapshotCut = graph.SnapshotCut
)

// Prediction types.
type (
	// Pair is a scored candidate node pair.
	Pair = predict.Pair
	// Options carries algorithm parameters (see DefaultOptions). Its
	// Workers field controls the parallel scoring engine (0 = GOMAXPROCS);
	// output is bit-identical at every worker count.
	Options = predict.Options
	// Algorithm is one metric-based link prediction method.
	Algorithm = predict.Algorithm
)

// Temporal filtering types.
type (
	// Tracker indexes a trace for temporal queries.
	Tracker = temporal.Tracker
	// FilterConfig holds the Table 7 temporal-filter thresholds.
	FilterConfig = temporal.FilterConfig
)

// GeneratorConfig parameterizes the synthetic dynamic-network model.
type GeneratorConfig = gen.Config

// Day is one day in trace-time seconds.
const Day = graph.Day

// DefaultOptions returns the paper's tuned algorithm parameters.
func DefaultOptions() Options { return predict.DefaultOptions() }

// BuildGraph constructs a snapshot from explicit edges over n nodes.
func BuildGraph(n int, edges []Edge) *Graph { return graph.Build(n, edges) }

// FacebookConfig, RenrenConfig and YouTubeConfig return the three synthetic
// trace presets standing in for the paper's datasets (DESIGN.md §1). Scale
// 1.0 reproduces the reference sizes; smaller scales shrink proportionally.
func FacebookConfig(seed int64, scale float64) GeneratorConfig {
	return gen.Facebook(seed).Scaled(scale)
}

// RenrenConfig returns the Renren analogue preset.
func RenrenConfig(seed int64, scale float64) GeneratorConfig {
	return gen.Renren(seed).Scaled(scale)
}

// YouTubeConfig returns the YouTube analogue preset.
func YouTubeConfig(seed int64, scale float64) GeneratorConfig {
	return gen.YouTube(seed).Scaled(scale)
}

// Generate synthesizes a dynamic network trace.
func Generate(cfg GeneratorConfig) (*Trace, error) { return gen.Generate(cfg) }

// SnapshotDelta returns the snapshot delta the experiment harness uses for
// a preset (Table 2 methodology).
func SnapshotDelta(cfg GeneratorConfig) int { return gen.DefaultDelta(cfg) }

// Algorithms lists the names of every implemented metric-based algorithm.
func Algorithms() []string {
	var names []string
	for _, a := range predict.All() {
		names = append(names, a.Name())
	}
	return names
}

// AlgorithmByName resolves an algorithm from its paper abbreviation (CN,
// JC, AA, RA, BCN, BAA, BRA, PA, SP, LP, Katz, KatzSC, PPR, LRW, Rescal).
func AlgorithmByName(name string) (Algorithm, error) { return predict.ByName(name) }

// Predict returns the k most likely new edges on g according to the named
// algorithm.
func Predict(g *Graph, algorithm string, k int, opt Options) ([]Pair, error) {
	alg, err := predict.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	return alg.Predict(g, k, opt), nil
}

// RandomPrediction draws k unconnected pairs uniformly, the paper's
// baseline.
func RandomPrediction(g *Graph, k int, seed int64) []Pair {
	return predict.RandomPrediction(g, k, seed)
}

// AccuracyRatio is the paper's headline metric: correct predictions over
// the random baseline's expected overlap k²/U.
func AccuracyRatio(correct, k int, g *Graph) float64 {
	return predict.AccuracyRatio(correct, k, g)
}

// TruthSet returns the canonical-pair-key set of new edges among nodes
// existing and unconnected in prev.
func TruthSet(prev *Graph, newEdges []Edge) map[uint64]bool {
	return predict.TruthSet(prev, newEdges)
}

// CountCorrect counts predictions present in a TruthSet.
func CountCorrect(pred []Pair, truth map[uint64]bool) int {
	return predict.CountCorrect(pred, truth)
}

// NewTracker indexes a trace for temporal queries and filtering.
func NewTracker(tr *Trace) *Tracker { return temporal.NewTracker(tr) }

// FilterConfigFor returns the Table 7 thresholds for a preset name
// (facebook, youtube, renren) or generic defaults otherwise.
func FilterConfigFor(network string) FilterConfig { return temporal.ConfigFor(network) }

// FilteredPredict augments an algorithm with the §6 temporal filter: rank,
// drop pairs failing the filter as of time t, return the top k survivors.
func FilteredPredict(algorithm string, g *Graph, tk *Tracker, t int64, k int, fc FilterConfig, opt Options) ([]Pair, error) {
	alg, err := predict.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	return temporal.FilteredPredict(alg, g, tk, t, k, fc, opt), nil
}

// ClassifierPipeline is a trained classification-based link predictor over
// a snowball-sampled universe (§5).
type ClassifierPipeline struct {
	prepared *classify.Prepared
	model    ml.Classifier
}

// ClassificationResult reports a pipeline evaluation.
type ClassificationResult struct {
	// Correct predictions among the top-k, the budget K, the accuracy
	// ratio against random within the sampled universe, and absolute
	// precision.
	Correct  int
	K        int
	Ratio    float64
	Accuracy float64
}

// TrainSVM prepares a classification instance from three consecutive
// snapshot cuts of a trace (train, test, eval), snowball-samples
// sampleNodes nodes from seed, trains a linear SVM with undersampling
// ratio 1:negPerPos, and returns the evaluated pipeline.
func TrainSVM(tr *Trace, cutTrain, cutTest, cutEval SnapshotCut, sampleNodes int, seed NodeID, negPerPos float64, opt Options) (*ClassifierPipeline, ClassificationResult, error) {
	p, err := classify.Prepare(tr, cutTrain, cutTest, cutEval, sampleNodes, seed, opt)
	if err != nil {
		return nil, ClassificationResult{}, err
	}
	svm := ml.NewSVM(opt.Seed)
	res, err := p.EvaluateClassifier(svm, negPerPos, opt.Seed)
	if err != nil {
		return nil, ClassificationResult{}, err
	}
	return &ClassifierPipeline{prepared: p, model: svm}, ClassificationResult(res), nil
}

// EvaluateMetricOnSample scores a metric-based algorithm on the pipeline's
// sampled universe, the Figure 11 comparison.
func (cp *ClassifierPipeline) EvaluateMetricOnSample(algorithm string, opt Options) (ClassificationResult, error) {
	alg, err := predict.ByName(algorithm)
	if err != nil {
		return ClassificationResult{}, err
	}
	return ClassificationResult(cp.prepared.EvaluateMetric(alg, opt)), nil
}

// FeatureNames returns the pipeline's feature (metric) names.
func (cp *ClassifierPipeline) FeatureNames() []string { return cp.prepared.FeatureNames }

// String renders a readable summary of a result.
func (r ClassificationResult) String() string {
	return fmt.Sprintf("correct=%d/%d accuracy=%.2f%% ratio=%.1fx over random", r.Correct, r.K, 100*r.Accuracy, r.Ratio)
}

package linkpred

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per artifact, DESIGN.md §3) plus ablation
// benchmarks for the design choices called out in DESIGN.md §4 and
// per-algorithm prediction microbenchmarks.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The shared fixture (three networks at experiments.BenchConfig scale, the
// cached metric sweep, and the prepared classification instances) is built
// once; the first benchmark touching each cached artifact pays its cost.

import (
	"sync"
	"testing"

	"linkpred/internal/experiments"
	"linkpred/internal/gen"
	"linkpred/internal/predict"
)

var (
	benchOnce sync.Once
	benchCfg  experiments.Config
	benchNets []*experiments.Network
)

func benchSetup(b *testing.B) (experiments.Config, []*experiments.Network) {
	b.Helper()
	benchOnce.Do(func() {
		benchCfg = experiments.BenchConfig()
		benchNets = experiments.LoadNetworks(benchCfg)
	})
	return benchCfg, benchNets
}

func benchNet(b *testing.B, name string) *experiments.Network {
	_, nets := benchSetup(b)
	for _, n := range nets {
		if n.Cfg.Name == name {
			return n
		}
	}
	b.Fatalf("unknown network %s", name)
	return nil
}

func BenchmarkTable2(b *testing.B) {
	c, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table2(c); len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	c, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if series := experiments.Figure1(c); len(series) != 3 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

func BenchmarkFigures2to4(b *testing.B) {
	c, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if series := experiments.Figures2to4(c); len(series) != 3 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table4(c, nets); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if series := experiments.Figure5(c, nets); len(series) == 0 {
			b.Fatal("no series")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6(c, nets)
		if res.Tree == nil {
			b.Fatal("no tree")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	c, _ := benchSetup(b)
	n := benchNet(b, "renren")
	algs := []predict.Algorithm{predict.Rescal, predict.LRW, predict.KatzLR, predict.LP, predict.BCN, predict.BAA, predict.BRA}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table5(c, n, algs); len(rows) != len(algs) {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	c, _ := benchSetup(b)
	n := benchNet(b, "renren")
	algs := []predict.Algorithm{predict.BCN, predict.JC, predict.LP, predict.PPR, predict.Rescal}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if series := experiments.Figure7(c, n, algs); len(series) != len(algs)+1 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	c, _ := benchSetup(b)
	n := benchNet(b, "renren")
	algs := []predict.Algorithm{predict.BCN, predict.JC, predict.LP, predict.PPR, predict.Rescal}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if series := experiments.Figure8(c, n, algs); len(series) != len(algs)+1 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table6(c, nets); len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	c, _ := benchSetup(b)
	n := benchNet(b, "facebook")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9(c, n)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10(c, nets)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure11(c, nets)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3*15 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure12(c, nets)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 3 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

func BenchmarkFigures13to15(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Figures13to15(c, nets); len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	_, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table7(nets); len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table8(c, nets)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure16(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure16(c, nets, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkExtraMissingLinks regenerates the missing-link detection extra.
func BenchmarkExtraMissingLinks(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MissingLinks(c, nets)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkExtraDirected regenerates the directed prediction extra.
func BenchmarkExtraDirected(b *testing.B) {
	c, nets := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Directed(c, nets)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAlgorithms measures each algorithm's full-graph Predict on the
// benchmark Renren snapshot (the paper's §3.2 computational-cost tiers).
func BenchmarkAlgorithms(b *testing.B) {
	c, _ := benchSetup(b)
	n := benchNet(b, "renren")
	cut := n.Cuts[len(n.Cuts)-2]
	g := n.Trace.SnapshotAtEdge(cut.EdgeCount)
	k := n.Delta
	for _, alg := range predict.All() {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if pred := alg.Predict(g, k, c.Opt); len(pred) == 0 {
					b.Fatal("no predictions")
				}
			}
		})
	}
}

// BenchmarkAblationCandidates compares the latent algorithms' bounded
// global candidate set (DESIGN.md §4) against exhaustive enumeration on a
// reduced graph, reporting the accuracy-relevant overlap as a metric.
func BenchmarkAblationCandidates(b *testing.B) {
	cfg := gen.YouTube(3).Scaled(0.12)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	i := len(cuts) - 2
	g := tr.SnapshotAtEdge(cuts[i].EdgeCount)
	truth := predict.TruthSet(g, tr.NewEdgesBetween(cuts[i], cuts[i+1]))
	k := len(truth)
	opt := predict.DefaultOptions()

	b.Run("bounded", func(b *testing.B) {
		var correct int
		for i := 0; i < b.N; i++ {
			pred := predict.Rescal.Predict(g, k, opt)
			correct = predict.CountCorrect(pred, truth)
		}
		b.ReportMetric(float64(correct), "correct")
	})
	b.Run("exhaustive", func(b *testing.B) {
		var correct int
		for i := 0; i < b.N; i++ {
			// Exhaustive: score every unconnected pair.
			var pairs []predict.Pair
			nn := g.NumNodes()
			for u := 0; u < nn; u++ {
				for v := u + 1; v < nn; v++ {
					if !g.HasEdge(int32(u), int32(v)) {
						pairs = append(pairs, predict.Pair{U: int32(u), V: int32(v)})
					}
				}
			}
			scores := predict.Rescal.ScorePairs(g, pairs, opt)
			top := predict.NewRanker(k, opt.Seed)
			for j, p := range pairs {
				top.Add(p.U, p.V, scores[j])
			}
			correct = predict.CountCorrect(top.Result(), truth)
		}
		b.ReportMetric(float64(correct), "correct")
	})
}

// BenchmarkAblationKatzRank sweeps the low-rank Katz approximation rank.
func BenchmarkAblationKatzRank(b *testing.B) {
	c, _ := benchSetup(b)
	n := benchNet(b, "facebook")
	cut := n.Cuts[len(n.Cuts)-2]
	g := n.Trace.SnapshotAtEdge(cut.EdgeCount)
	for _, rank := range []int{8, 32, 128} {
		opt := c.Opt
		opt.KatzRank = rank
		b.Run(map[int]string{8: "rank8", 32: "rank32", 128: "rank128"}[rank], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if pred := predict.KatzLR.Predict(g, n.Delta, opt); len(pred) == 0 {
					b.Fatal("no predictions")
				}
			}
		})
	}
}

// BenchmarkAblationUndersampling sweeps the SVM undersampling ratio on one
// prepared instance, reporting the accuracy ratio (Figure 10's ablation).
func BenchmarkAblationUndersampling(b *testing.B) {
	c, _ := benchSetup(b)
	rows, err := experiments.Figure10(c, []*experiments.Network{benchNet(b, "renren")})
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.Ratio.Mean, "ratio_theta_"+itoa(int(r.Theta)))
	}
	for i := 0; i < b.N; i++ {
		_ = rows
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[pos:])
}

// BenchmarkAblationKatzVariants compares the accuracy of the Katz
// implementations against the truncated-exact reference on the benchmark
// Facebook snapshot, reporting hits as metrics.
func BenchmarkAblationKatzVariants(b *testing.B) {
	c, _ := benchSetup(b)
	n := benchNet(b, "facebook")
	i := len(n.Cuts) - 2
	g := n.Trace.SnapshotAtEdge(n.Cuts[i].EdgeCount)
	truth := predict.TruthSet(g, n.Trace.NewEdgesBetween(n.Cuts[i], n.Cuts[i+1]))
	k := len(truth)
	for _, alg := range []predict.Algorithm{predict.KatzExact, predict.KatzLR, predict.KatzSC} {
		b.Run(alg.Name(), func(b *testing.B) {
			var correct int
			for i := 0; i < b.N; i++ {
				correct = predict.CountCorrect(alg.Predict(g, k, c.Opt), truth)
			}
			b.ReportMetric(float64(correct), "correct")
		})
	}
}

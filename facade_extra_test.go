package linkpred

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeCSVRoundTrip(t *testing.T) {
	tr, _ := smallTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != tr.NumEdges() {
		t.Fatalf("edges = %d, want %d", got.NumEdges(), tr.NumEdges())
	}
	var bin bytes.Buffer
	if _, err := tr.WriteTo(&bin); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadTraceBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumEdges() != tr.NumEdges() {
		t.Fatalf("binary edges = %d", got2.NumEdges())
	}
	if _, err := ReadTraceCSV(strings.NewReader("garbage"), "bad"); err == nil {
		t.Error("garbage CSV accepted")
	}
}

func TestFacadeExtensions(t *testing.T) {
	exts := ExtensionAlgorithms()
	if len(exts) != 7 {
		t.Fatalf("extensions = %d, want 6 survey metrics + SBM", len(exts))
	}
	tr, cfg := smallTrace(t)
	cuts := tr.Cuts(SnapshotDelta(cfg))
	g := tr.SnapshotAtEdge(cuts[len(cuts)-2].EdgeCount)
	for _, a := range exts {
		pred := a.Predict(g, 5, DefaultOptions())
		if len(pred) == 0 {
			t.Errorf("%s made no predictions", a.Name())
		}
	}
}

func TestFacadeEvalHelpers(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.8}
	labels := []bool{true, false, true}
	if auc := AUC(scores, labels); auc != 1 {
		t.Errorf("AUC = %v", auc)
	}
	pairs := []Pair{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}}
	truth := map[uint64]bool{pairs[0].Key(): true, pairs[2].Key(): true}
	ranked := RankLabels(pairs, scores, truth, 1)
	if !ranked[0] || !ranked[1] || ranked[2] {
		t.Errorf("ranked = %v", ranked)
	}
	if ap := AveragePrecision(ranked); ap != 1 {
		t.Errorf("AP = %v", ap)
	}
	if p := PrecisionAtK(ranked, []int{2}); p[0] != 1 {
		t.Errorf("P@2 = %v", p)
	}
	if r := RecallAtK(ranked, []int{1}); r[0] != 0.5 {
		t.Errorf("R@1 = %v", r)
	}
}

func TestFacadeCommunityAndFeatures(t *testing.T) {
	tr, cfg := smallTrace(t)
	cuts := tr.Cuts(SnapshotDelta(cfg))
	g := tr.SnapshotAtEdge(cuts[len(cuts)-1].EdgeCount)
	comms := DetectCommunities(g, 10, 1)
	if comms.Count <= 0 || len(comms.Of) != g.NumNodes() {
		t.Fatalf("communities = %+v", comms.Count)
	}
	q := Modularity(g, comms)
	if q < -1 || q > 1 {
		t.Errorf("modularity = %v", q)
	}
	feats := NetworkFeatures(g, 100, 1)
	names := NetworkFeatureNames()
	if len(feats) != len(names) {
		t.Fatalf("features %d != names %d", len(feats), len(names))
	}
	if feats[0] != float64(g.NumNodes()) {
		t.Errorf("nodes feature = %v", feats[0])
	}
	a := Assortativity(g)
	if a < -1 || a > 1 {
		t.Errorf("assortativity = %v", a)
	}
	last := len(cuts) - 2
	prev := tr.SnapshotAtEdge(cuts[last].EdgeCount)
	l2 := Lambda2(prev, tr.NewEdgesBetween(cuts[last], cuts[last+1]))
	if l2 < 0 || l2 > 1 {
		t.Errorf("lambda2 = %v", l2)
	}
}

func TestFacadeDirected(t *testing.T) {
	tr, _ := smallTrace(t)
	d := DirectedFromTrace(tr, tr.NumEdges()*3/4)
	if d.NumArcs() == 0 {
		t.Fatal("no arcs")
	}
	for _, s := range DirectedScorers() {
		arcs := PredictArcs(d, s, 5, 1)
		if len(arcs) == 0 {
			t.Errorf("%s: no directed predictions", s.Name())
		}
	}
}

func TestFacadeMissingLinks(t *testing.T) {
	tr, cfg := smallTrace(t)
	g := tr.SnapshotAtEdge(tr.NumEdges())
	_ = cfg
	res, err := DetectMissingLinks(g, "AA", 0.1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hidden == 0 || res.Ratio <= 1 {
		t.Errorf("missing-link result = %+v", res)
	}
	if _, err := DetectMissingLinks(g, "NOPE", 0.1, DefaultOptions()); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

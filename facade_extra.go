package linkpred

import (
	"io"

	"linkpred/internal/analysis"
	"linkpred/internal/community"
	"linkpred/internal/digraph"
	"linkpred/internal/eval"
	"linkpred/internal/graph"
	"linkpred/internal/predict"
	"linkpred/internal/temporal"
)

// This file extends the facade with the interoperability and analysis
// surface beyond the paper-faithful core: CSV trace exchange, whole-list
// ranking measures (AUC, precision/recall curves), the survey-metric
// extensions, and community detection with the SBM extension predictor.

// ReadTraceCSV loads a dynamic-network trace from "u,v,timestamp" text
// (comma, tab, semicolon or space separated; '#'/'%' comments). Node IDs
// are remapped densely in arrival order. This is the path for running the
// toolkit on real edge-list datasets.
func ReadTraceCSV(r io.Reader, name string) (*Trace, error) {
	return graph.ReadCSV(r, name)
}

// ReadTraceBinary loads a trace written by Trace.WriteTo / cmd/tracegen.
func ReadTraceBinary(r io.Reader) (*Trace, error) {
	return graph.ReadTrace(r)
}

// ExtensionAlgorithms lists the survey metrics beyond the paper's 14
// (Salton, Sorensen, HPI, HDI, LHN, SRW) plus the community-model SBM; all
// are resolvable through AlgorithmByName-style lookup via this slice.
func ExtensionAlgorithms() []Algorithm {
	return append(predict.Extensions(), community.SBM)
}

// AUC is the Mann-Whitney area under the ROC curve for scored items with
// binary relevance — the whole-list measure the paper discusses (and
// deliberately avoids) in §4.1.
func AUC(scores []float64, labels []bool) float64 { return eval.AUC(scores, labels) }

// RankLabels orders pair labels best-first under the library's
// deterministic tie-breaking, feeding the precision/recall measures.
func RankLabels(pairs []Pair, scores []float64, truth map[uint64]bool, seed int64) []bool {
	return eval.RankLabels(pairs, scores, truth, seed)
}

// PrecisionAtK returns the top-k precision curve of a ranked label list.
func PrecisionAtK(ranked []bool, ks []int) []float64 { return eval.PrecisionAtK(ranked, ks) }

// RecallAtK returns the top-k recall curve.
func RecallAtK(ranked []bool, ks []int) []float64 { return eval.RecallAtK(ranked, ks) }

// AveragePrecision is the mean precision at the positive ranks.
func AveragePrecision(ranked []bool) float64 { return eval.AveragePrecision(ranked) }

// Communities holds a community assignment.
type Communities = community.Labels

// DetectCommunities runs seeded asynchronous label propagation.
func DetectCommunities(g *Graph, maxSweeps int, seed int64) Communities {
	return community.Detect(g, maxSweeps, seed)
}

// Modularity scores a community assignment (Newman's Q).
func Modularity(g *Graph, labels Communities) float64 {
	return community.Modularity(g, labels)
}

// NetworkFeatures measures the snapshot features of §4.3 (node/edge
// counts, degree statistics, clustering, path length, assortativity), in
// NetworkFeatureNames order.
func NetworkFeatures(g *Graph, sample int, seed int64) []float64 {
	return analysis.Features(g, sample, seed)
}

// NetworkFeatureNames labels the NetworkFeatures vector.
func NetworkFeatureNames() []string {
	names := make([]string, len(analysis.FeatureNames))
	copy(names, analysis.FeatureNames)
	return names
}

// Assortativity returns the degree assortativity coefficient of g.
func Assortativity(g *Graph) float64 { return analysis.Assortativity(g) }

// ConnectedComponents labels every node with its component ID.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	return graph.ConnectedComponents(g)
}

// LargestComponent returns the node set of the largest connected component.
func LargestComponent(g *Graph) []NodeID { return graph.LargestComponent(g) }

// WeightedMetrics returns the recency-weighted CN/AA/RA variants (paper
// future work [27], with edge weights derived from creation times).
func WeightedMetrics(tk *Tracker) []Algorithm { return temporal.WeightedMetrics(tk) }

// Directed link prediction (the paper's first future-work item, §7).
type (
	// DiGraph is a directed snapshot; trace edges carry direction as
	// initiator → target.
	DiGraph = digraph.DiGraph
	// Arc is a scored directed candidate.
	Arc = digraph.Arc
	// DirectedScorer is a directed link prediction metric.
	DirectedScorer = digraph.Scorer
)

// DirectedFromTrace builds the directed snapshot of the first m trace arcs.
func DirectedFromTrace(tr *Trace, m int) *DiGraph { return digraph.FromTrace(tr, m) }

// DirectedScorers returns the directed metric catalogue (DCN, DAA,
// Reciprocity, DPA).
func DirectedScorers() []DirectedScorer { return digraph.Scorers() }

// PredictArcs returns the top-k directed candidates of a directed scorer.
func PredictArcs(d *DiGraph, s DirectedScorer, k int, seed int64) []Arc {
	return digraph.PredictArcs(d, s, k, seed)
}

// MissingLinkResult reports a hide-and-recover experiment.
type MissingLinkResult = eval.MissingLinkResult

// DetectMissingLinks hides a random fraction of g's edges and measures how
// well the named algorithm recovers them — the missing-link task §2
// distinguishes from future-link prediction.
func DetectMissingLinks(g *Graph, algorithm string, hideFrac float64, opt Options) (MissingLinkResult, error) {
	alg, err := predict.ByName(algorithm)
	if err != nil {
		return MissingLinkResult{}, err
	}
	return eval.DetectMissing(g, alg, hideFrac, opt)
}

// Lambda2 is the paper's 2-hop edge ratio: the fraction of new edges whose
// endpoints were exactly two hops apart in prev.
func Lambda2(prev *Graph, newEdges []Edge) float64 { return analysis.Lambda2(prev, newEdges) }

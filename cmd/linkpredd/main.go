// Command linkpredd is the live link-prediction server. It ingests
// timestamped edge events over HTTP, folds them into a growing trace via
// the incremental snapshot builder, publishes immutable snapshots on a
// configurable cadence, and answers top-k and pair-score queries from a
// bounded worker pool with per-request deadlines, coalesced pair-score
// sweeps, backpressure, and graceful degradation of latent-family
// algorithms under load.
//
// Usage:
//
//	linkpredd -addr :8080
//	linkpredd -addr :8080 -trace renren.trace            # warm start
//	linkpredd -snapshot-every 256 -workers 4 -queue 512
//	linkpredd -degrade-p95 100ms -recover-after 32
//
// API (see internal/serve and DESIGN.md §9):
//
//	GET  /predict?alg=CN&k=50[&timeout_ms=200]
//	POST /score   {"alg":"AA","pairs":[[u,v],...]}
//	POST /ingest  {"events":[{"u":1,"v":2,"t":10},...]}
//	POST /flush
//	GET  /healthz
//	GET  /metrics
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	tracePath := flag.String("trace", "", "warm-start trace file written by tracegen (optional)")
	snapshotEvery := flag.Int("snapshot-every", 512, "publish a snapshot every N accepted edges")
	workers := flag.Int("workers", 2, "scoring worker pool size")
	engineWorkers := flag.Int("engine-workers", 1, "engine parallelism per request")
	queue := flag.Int("queue", 256, "request queue bound (full queue returns 429)")
	batch := flag.Int("batch", 16, "max same-algorithm score requests coalesced per sweep")
	warm := flag.Bool("warm", true, "prebuild snapshot artifacts off the request path after publish")
	degradeP95 := flag.Duration("degrade-p95", 250*time.Millisecond, "rolling p95 latency that trips degradation")
	degradeQueue := flag.Int("degrade-queue", 0, "queue depth that trips degradation (0 = 3/4 of -queue)")
	recoverAfter := flag.Int("recover-after", 16, "consecutive healthy sweeps before the latent path re-enables")
	noDegrade := flag.Bool("no-degrade", false, "disable graceful degradation")
	seed := flag.Int64("seed", 1, "tie-break seed (fixes ranked output across restarts)")
	obsOn := flag.Bool("obs", true, "enable telemetry counters (served at /metrics)")
	flag.Parse()

	obs.Enable(*obsOn)

	var tr *graph.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fail(err)
		}
		tr, err = graph.ReadTrace(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("linkpredd: warm start from %s: %d nodes, %d edges\n", *tracePath, tr.NumNodes(), tr.NumEdges())
	}

	cfg := serve.Config{
		SnapshotEvery: *snapshotEvery,
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxBatch:      *batch,
		Warm:          *warm,
		Trace:         tr,
		Degrade: serve.DegradeConfig{
			P95:          *degradeP95,
			QueueDepth:   *degradeQueue,
			RecoverAfter: *recoverAfter,
			Disabled:     *noDegrade,
		},
	}
	cfg.Opt.Seed = *seed
	cfg.Opt.Workers = *engineWorkers

	srv, err := serve.New(cfg)
	if err != nil {
		fail(err)
	}
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("linkpredd: serving on %s (snapshot every %d edges, %d workers, queue %d)\n",
		*addr, *snapshotEvery, *workers, *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fail(err)
	case sig := <-sigc:
		fmt.Printf("linkpredd: %v, shutting down\n", sig)
		hs.Close()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "linkpredd:", err)
	os.Exit(1)
}

// Command linkpredd is the live link-prediction server. It ingests
// timestamped edge events over HTTP, folds them into a growing trace via
// the incremental snapshot builder, publishes immutable snapshots on a
// configurable cadence, and answers top-k and pair-score queries from a
// bounded worker pool with per-request deadlines, coalesced pair-score
// sweeps, backpressure, and graceful degradation of latent-family
// algorithms under load. With live evaluation on (the default), every
// /predict response is recorded into a prequential engine and every
// subsequently ingested edge is scored against it, so /metrics carries
// measured hit@k, MRR, and precision per algorithm — and the degradation
// controller routes to the proxy with the best measured accuracy per unit
// cost.
//
// Usage:
//
//	linkpredd -addr :8080
//	linkpredd -addr :8080 -trace renren.trace            # warm start
//	linkpredd -snapshot-every 256 -workers 4 -queue 512
//	linkpredd -degrade-p95 100ms -recover-after 32
//	linkpredd -eval-topk 64 -eval-window 512              # prequential tuning
//	linkpredd -partition 0:25000                          # memory-partitioned shard (DESIGN.md §13)
//	linkpredd -metrics-out metrics.json -metrics-every 15s
//	linkpredd -wal-dir /var/lib/linkpred/wal              # durable ingest (DESIGN.md §14)
//	linkpredd -wal-dir ... -recover                       # replay checkpoint + log after a crash
//	linkpredd -wal-dir ... -checkpoint-every 8192
//
// API (see internal/serve and DESIGN.md §9, §11):
//
//	GET  /predict?alg=CN&k=50[&timeout_ms=200]
//	POST /score   {"alg":"AA","pairs":[[u,v],...]}
//	POST /ingest  {"events":[{"u":1,"v":2,"t":10},...]}
//	POST /flush
//	GET  /healthz
//	GET  /metrics                — JSON telemetry dump
//	GET  /metrics?format=prom    — Prometheus text exposition (0.0.4)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"linkpred/internal/graph"
	"linkpred/internal/liveeval"
	"linkpred/internal/obs"
	"linkpred/internal/serve"
	"linkpred/internal/wal"
)

// metricsDoc mirrors cmd/experiments' -metrics-out schema so the same
// tooling (cmd/promlint -json, notebooks) reads both.
type metricsDoc struct {
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	Metrics     *obs.Dump `json:"metrics,omitempty"`
}

// writeMetrics dumps the current telemetry snapshot atomically (write to a
// temp file in the target directory, then rename) so a scraper tailing the
// path never reads a torn report.
func writeMetrics(path string) error {
	doc := metricsDoc{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	if obs.Enabled() {
		doc.Metrics = obs.Snapshot()
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	tracePath := flag.String("trace", "", "warm-start trace file written by tracegen (optional)")
	snapshotEvery := flag.Int("snapshot-every", 512, "publish a snapshot every N accepted edges")
	workers := flag.Int("workers", 2, "scoring worker pool size")
	engineWorkers := flag.Int("engine-workers", 1, "engine parallelism per request")
	queue := flag.Int("queue", 256, "request queue bound (full queue returns 429)")
	batch := flag.Int("batch", 16, "max same-algorithm score requests coalesced per sweep")
	warm := flag.Bool("warm", true, "prebuild snapshot artifacts off the request path after publish")
	degradeP95 := flag.Duration("degrade-p95", 250*time.Millisecond, "rolling p95 latency that trips degradation")
	degradeQueue := flag.Int("degrade-queue", 0, "queue depth that trips degradation (0 = 3/4 of -queue)")
	recoverAfter := flag.Int("recover-after", 16, "consecutive healthy sweeps before the latent path re-enables")
	noDegrade := flag.Bool("no-degrade", false, "disable graceful degradation")
	seed := flag.Int64("seed", 1, "tie-break seed (fixes ranked output across restarts)")
	obsOn := flag.Bool("obs", true, "enable telemetry counters (served at /metrics)")
	evalOn := flag.Bool("eval", true, "prequential live evaluation: score ingested edges against served predictions")
	evalTopK := flag.Int("eval-topk", 128, "ranked pairs retained per recorded prediction set")
	evalWindow := flag.Int("eval-window", 1024, "sliding window (scored edges) for windowed hit rate and AUPR")
	partition := flag.String("partition", "", "serve as one memory-partitioned shard owning dense sources [lo:hi); materializes only owned adjacency rows plus frontier and serves the partition-safe local family only")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: every accepted ingest event is fsynced here before it is acked, so acked events survive a crash (DESIGN.md §14)")
	checkpointEvery := flag.Int("checkpoint-every", 4096, "with -wal-dir: write a checkpoint snapshot after the replay horizon grows by N edges (negative disables)")
	recoverWAL := flag.Bool("recover", false, "with -wal-dir: allow booting from a non-empty log directory, replaying checkpoint + tail and resuming at the recovered position; without it existing state is an error, so a stale directory is never reused silently")
	metricsOut := flag.String("metrics-out", "", "write the telemetry report as JSON to this path periodically and at shutdown; implies -obs")
	metricsEvery := flag.Duration("metrics-every", 30*time.Second, "rewrite -metrics-out on this period")
	flag.Parse()

	obs.Enable(*obsOn || *metricsOut != "")

	var tr *graph.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fail(err)
		}
		tr, err = graph.ReadTrace(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("linkpredd: warm start from %s: %d nodes, %d edges\n", *tracePath, tr.NumNodes(), tr.NumEdges())
	}

	cfg := serve.Config{
		SnapshotEvery: *snapshotEvery,
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxBatch:      *batch,
		Warm:          *warm,
		Trace:         tr,
		Degrade: serve.DegradeConfig{
			P95:          *degradeP95,
			QueueDepth:   *degradeQueue,
			RecoverAfter: *recoverAfter,
			Disabled:     *noDegrade,
		},
	}
	cfg.Opt.Seed = *seed
	cfg.Opt.Workers = *engineWorkers
	if *evalOn {
		cfg.Eval = liveeval.New(liveeval.Config{TopK: *evalTopK, Window: *evalWindow})
	}
	if *partition != "" {
		var lo, hi int
		if _, err := fmt.Sscanf(*partition, "%d:%d", &lo, &hi); err != nil || lo < 0 || hi <= lo {
			fail(fmt.Errorf("bad -partition %q (want lo:hi with 0 <= lo < hi)", *partition))
		}
		cfg.Partition = &[2]int{lo, hi}
		fmt.Printf("linkpredd: partitioned shard owning sources [%d, %d)\n", lo, hi)
	}
	if *walDir != "" {
		st, err := wal.NewDirStorage(*walDir)
		if err != nil {
			fail(err)
		}
		names, err := st.List()
		if err != nil {
			fail(err)
		}
		if len(names) > 0 && !*recoverWAL {
			fail(fmt.Errorf("wal dir %s holds existing state (%d files); pass -recover to replay it", *walDir, len(names)))
		}
		cfg.WAL = st
		cfg.CheckpointEvery = *checkpointEvery
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fail(err)
	}
	defer srv.Close()
	if *walDir != "" {
		if w := srv.Health().WAL; w != nil {
			fmt.Printf("linkpredd: wal %s: recovered %d edges (%d replayed from log, checkpoint at %d, truncated=%v)\n",
				*walDir, w.RecoveredEdges, w.RecoveredTail, w.CheckpointEdges, w.Truncated)
		}
	}

	stopDump := func() {}
	if *metricsOut != "" {
		done := make(chan struct{})
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			t := time.NewTicker(*metricsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := writeMetrics(*metricsOut); err != nil {
						fmt.Fprintf(os.Stderr, "linkpredd: metrics-out: %v\n", err)
					}
				case <-done:
					return
				}
			}
		}()
		stopDump = func() {
			close(done)
			<-finished
			if err := writeMetrics(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "linkpredd: metrics-out: %v\n", err)
			}
		}
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("linkpredd: serving on %s (snapshot every %d edges, %d workers, queue %d, eval %v)\n",
		*addr, *snapshotEvery, *workers, *queue, *evalOn)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		stopDump()
		fail(err)
	case sig := <-sigc:
		fmt.Printf("linkpredd: %v, shutting down\n", sig)
		hs.Close()
		stopDump()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "linkpredd:", err)
	os.Exit(1)
}

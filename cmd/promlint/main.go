// Command promlint validates a metrics scrape read from stdin.
//
// By default the input is Prometheus text exposition (what linkpredd and
// cmd/experiments serve at /metrics?format=prom): it is checked against
// the same lint the repo's golden tests use — legal names and labels,
// TYPE lines preceding samples, cumulative non-decreasing histogram
// buckets ending in +Inf, and bucket/count agreement. With -json the
// input is instead the JSON telemetry report written by -metrics-out
// (either the bare obs dump or the {"metrics": ...} envelope).
//
// -require takes a comma-separated list of metric family names that must
// be present; a required name matches a sample called exactly that, or a
// family carrying a suffix (_bucket, _count, _p95, ...) or label set. The
// CI scrape-smoke job uses this to assert the live-evaluation and
// serving-health series actually exist on a running server.
//
// Usage:
//
//	curl -s localhost:8080/metrics?format=prom | promlint \
//	    -require linkpred_liveeval_hits_total,linkpred_serve_snapshot_age_seconds
//	curl -s localhost:8080/metrics | promlint -json
//
// Exit status 0 on a clean scrape, 1 with a diagnostic on stderr otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"linkpred/internal/obs"
)

func main() {
	jsonMode := flag.Bool("json", false, "input is the JSON telemetry report, not Prometheus text")
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	flag.Parse()

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fail(err)
	}
	if len(data) == 0 {
		fail(fmt.Errorf("empty input"))
	}

	var present []string
	if *jsonMode {
		present, err = jsonFamilies(data)
	} else {
		if err = obs.LintPrometheus(data); err == nil {
			present = promFamilies(data)
		}
	}
	if err != nil {
		fail(err)
	}

	var missing []string
	for _, want := range splitRequire(*require) {
		if !hasFamily(present, want) {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		fail(fmt.Errorf("missing required families: %s", strings.Join(missing, ", ")))
	}
	fmt.Printf("promlint: ok (%d series", len(present))
	if *require != "" {
		fmt.Printf(", %d required present", len(splitRequire(*require)))
	}
	fmt.Println(")")
}

// splitRequire parses the -require list, dropping empty entries.
func splitRequire(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// promFamilies extracts the sample names from already-linted exposition
// text (the portion before the label set or value).
func promFamilies(data []byte) []string {
	seen := map[string]bool{}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// jsonFamilies validates the JSON report and returns every metric name it
// carries (counters, histograms, gauges, rolling windows), prefixed with
// nothing — JSON mode matches the raw obs names, e.g. serve/snapshot_seq.
func jsonFamilies(data []byte) ([]string, error) {
	var envelope struct {
		Metrics *obs.Dump `json:"metrics"`
	}
	var dump *obs.Dump
	if err := json.Unmarshal(data, &envelope); err == nil && envelope.Metrics != nil {
		dump = envelope.Metrics
	} else {
		dump = &obs.Dump{}
		if err := json.Unmarshal(data, dump); err != nil {
			return nil, fmt.Errorf("not a telemetry report: %v", err)
		}
	}
	if !dump.Enabled && len(dump.Counters) == 0 && len(dump.Gauges) == 0 &&
		len(dump.Histograms) == 0 && len(dump.Rolling) == 0 {
		return nil, fmt.Errorf("telemetry report carries no metrics (obs disabled?)")
	}
	var out []string
	for name := range dump.Counters {
		out = append(out, name)
	}
	for name := range dump.Histograms {
		out = append(out, name)
	}
	for name := range dump.Gauges {
		out = append(out, name)
	}
	for name := range dump.Rolling {
		out = append(out, name)
	}
	return out, nil
}

// hasFamily reports whether a required family name is present: an exact
// sample match, a suffixed form (histogram _bucket/_count/_p95 samples),
// or the name immediately followed by a label set.
func hasFamily(present []string, want string) bool {
	for _, name := range present {
		if name == want || strings.HasPrefix(name, want+"_") || strings.HasPrefix(name, want+"{") {
			return true
		}
	}
	return false
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "promlint:", err)
	os.Exit(1)
}

// Command linkpredr is the cluster router: a thin scatter/gather front for
// N linkpredd workers, each owning one contiguous source-node shard of the
// candidate universe (DESIGN.md §12). It exposes the same HTTP surface as a
// single worker, so clients see one big server:
//
//   - /predict scatters the query to every shard with shard=i&shards=N,
//     gathers same-epoch partial top-k lists (re-asking stragglers), and
//     merges them with the engine's seeded tie-break — bit-identical to a
//     single-process sweep. Dead or persistently misaligned shards yield
//     partial:true plus the missing source ranges.
//   - /ingest replicates each event batch to every shard in serialized
//     order, keeping snapshot cadence — and therefore epochs — aligned.
//   - /score forwards to one shard round-robin (any shard holds the full
//     graph); /flush publishes everywhere; /healthz aggregates, flagging
//     shards that restarted from their write-ahead log (linkpredd -wal-dir)
//     and are still behind the replicated stream as catching_up — their
//     ranges serve partial until the ingest delta is replayed and the
//     trace lengths realign.
//
// Usage:
//
//	linkpredr -addr :8080 -shard http://127.0.0.1:8081 -shard http://127.0.0.1:8082
//	linkpredr -hedge-after 100ms -epoch-retries 6 -timeout 5s
//	linkpredr -metrics-out router-metrics.json
//	linkpredr -partitioned -shard ... -shard ...   # memory-partitioned workers (linkpredd -partition)
//	linkpredr -eval                                # router-side prequential evaluation of merged rankings
//
// -seed must match the workers' -seed: the merge breaks score ties with the
// same seeded hash the shards ranked by.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"linkpred/internal/cluster"
	"linkpred/internal/liveeval"
	"linkpred/internal/obs"
)

// shardList collects repeated -shard flags in order; the flag order IS the
// shard-index assignment.
type shardList []string

func (s *shardList) String() string { return fmt.Sprint(*s) }

func (s *shardList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// metricsDoc mirrors linkpredd's -metrics-out schema so the same tooling
// reads worker and router reports alike.
type metricsDoc struct {
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	Metrics     *obs.Dump `json:"metrics,omitempty"`
}

func writeMetrics(path string) error {
	doc := metricsDoc{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	if obs.Enabled() {
		doc.Metrics = obs.Snapshot()
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func main() {
	var shards shardList
	addr := flag.String("addr", ":8080", "HTTP listen address")
	flag.Var(&shards, "shard", "worker base URL; repeat once per shard, in shard order")
	seed := flag.Int64("seed", 1, "tie-break seed; must equal the workers' -seed")
	timeout := flag.Duration("timeout", 10*time.Second, "default scatter/gather budget (explicit timeout_ms wins)")
	hedgeAfter := flag.Duration("hedge-after", 150*time.Millisecond, "delay before hedging a straggling shard (negative disables)")
	epochRetries := flag.Int("epoch-retries", 4, "re-asks of a stale shard before serving a partial response")
	epochBackoff := flag.Duration("epoch-backoff", 25*time.Millisecond, "wait between epoch re-asks")
	obsOn := flag.Bool("obs", true, "enable telemetry counters (served at /metrics)")
	metricsOut := flag.String("metrics-out", "", "write the telemetry report as JSON to this path periodically and at shutdown; implies -obs")
	metricsEvery := flag.Duration("metrics-every", 30*time.Second, "rewrite -metrics-out on this period")
	partitioned := flag.Bool("partitioned", false, "workers are memory-partitioned (linkpredd -partition, listed in ascending ownership order): predict scatters without shard parameters, score broadcasts and merges by ownership")
	evalOn := flag.Bool("eval", false, "router-side prequential evaluation: score replicated ingest edges against merged predict rankings (served in /metrics)")
	evalTopK := flag.Int("eval-topk", 128, "ranked pairs retained per recorded merged prediction set")
	evalWindow := flag.Int("eval-window", 1024, "sliding window (scored edges) for windowed hit rate and AUPR")
	flag.Parse()

	if len(shards) == 0 {
		fail(fmt.Errorf("at least one -shard is required"))
	}
	obs.Enable(*obsOn || *metricsOut != "")

	ccfg := cluster.Config{
		Shards:       shards,
		Seed:         *seed,
		Timeout:      *timeout,
		HedgeAfter:   *hedgeAfter,
		EpochRetries: *epochRetries,
		EpochBackoff: *epochBackoff,
		Partitioned:  *partitioned,
	}
	if *evalOn {
		ccfg.Eval = liveeval.New(liveeval.Config{TopK: *evalTopK, Window: *evalWindow})
	}
	router := cluster.New(ccfg)

	stopDump := func() {}
	if *metricsOut != "" {
		done := make(chan struct{})
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			t := time.NewTicker(*metricsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := writeMetrics(*metricsOut); err != nil {
						fmt.Fprintf(os.Stderr, "linkpredr: metrics-out: %v\n", err)
					}
				case <-done:
					return
				}
			}
		}()
		stopDump = func() {
			close(done)
			<-finished
			if err := writeMetrics(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "linkpredr: metrics-out: %v\n", err)
			}
		}
	}

	hs := &http.Server{Addr: *addr, Handler: router.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("linkpredr: routing %d shards on %s (seed %d, hedge %v, epoch retries %d)\n",
		len(shards), *addr, *seed, *hedgeAfter, *epochRetries)
	for i, s := range shards {
		fmt.Printf("linkpredr: shard %d -> %s\n", i, s)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		stopDump()
		fail(err)
	case sig := <-sigc:
		fmt.Printf("linkpredr: %v, shutting down\n", sig)
		hs.Close()
		stopDump()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "linkpredr:", err)
	os.Exit(1)
}

// Command linkpred predicts the next links of a stored dynamic-network
// trace: it builds the snapshot sequence, runs the chosen algorithm on the
// second-to-last snapshot, and reports the top-k predictions together with
// their accuracy against the trace's actual final-snapshot edges.
//
// Usage:
//
//	linkpred -trace renren.trace -alg BRA -k 50
//	linkpred -trace renren.trace -alg SVM -k 50        # classification
//	linkpred -trace renren.trace -alg BRA -k 50 -filter renren
//	linkpred -trace renren.trace -alg AA -missing 0.1  # missing-link mode
//	linkpred -trace renren.trace -directed DCN         # directed mode
//	linkpred -algs                                     # list algorithms
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	linkpred "linkpred"
	"linkpred/internal/graph"
)

func main() {
	tracePath := flag.String("trace", "", "trace file written by tracegen")
	alg := flag.String("alg", "BRA", "algorithm name, or SVM for the classification pipeline")
	k := flag.Int("k", 0, "predictions to make (0 = ground-truth new-edge count)")
	delta := flag.Int("delta", 0, "snapshot delta in edges (0 = 1/20 of the trace)")
	filter := flag.String("filter", "", "apply temporal filter with this preset's thresholds (facebook/renren/youtube)")
	missing := flag.Float64("missing", 0, "missing-link mode: hide this fraction of edges and recover them")
	directed := flag.String("directed", "", "directed mode with this scorer (DCN, DAA, Recip, DPA)")
	listAlgs := flag.Bool("algs", false, "list metric algorithms and exit")
	seed := flag.Int64("seed", 1, "seed for tie-breaking and training")
	flag.Parse()

	if *listAlgs {
		fmt.Println(strings.Join(linkpred.Algorithms(), " "))
		return
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "linkpred: -trace is required (generate one with tracegen)")
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tr, err := graph.ReadTrace(f)
	if err != nil {
		fail(err)
	}
	d := *delta
	if d <= 0 {
		d = tr.NumEdges() / 20
	}
	cuts := tr.Cuts(d)
	if len(cuts) < 3 {
		fail(fmt.Errorf("trace too small for delta %d", d))
	}
	opt := linkpred.DefaultOptions()
	opt.Seed = *seed

	if *missing > 0 {
		g := tr.SnapshotAtEdge(tr.NumEdges())
		res, err := linkpred.DetectMissingLinks(g, *alg, *missing, opt)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s missing-link detection on %s (hid %.0f%% of %d edges): recovered %d/%d, ratio %.1fx, AUC %.3f\n",
			*alg, tr.Name, 100**missing, g.NumEdges(), res.Recovered, res.Hidden, res.Ratio, res.AUC)
		return
	}
	if *directed != "" {
		var scorer linkpred.DirectedScorer
		for _, s := range linkpred.DirectedScorers() {
			if s.Name() == *directed {
				scorer = s
			}
		}
		if scorer == nil {
			fail(fmt.Errorf("unknown directed scorer %q (DCN, DAA, Recip, DPA)", *directed))
		}
		m := len(tr.Edges) - d
		dg := linkpred.DirectedFromTrace(tr, m)
		budget := *k
		if budget <= 0 {
			budget = d
		}
		arcs := linkpred.PredictArcs(dg, scorer, budget, *seed)
		truth := map[[2]int32]bool{}
		for _, e := range tr.Edges[m:] {
			truth[[2]int32{e.U, e.V}] = true
		}
		hits := 0
		for _, a := range arcs {
			if truth[[2]int32{a.From, a.To}] {
				hits++
			}
		}
		fmt.Printf("%s directed prediction on %s (%d arcs): %d predictions, %d correct\n",
			*directed, tr.Name, dg.NumArcs(), len(arcs), hits)
		return
	}

	i := len(cuts) - 2
	g := tr.SnapshotAtEdge(cuts[i].EdgeCount)
	truth := linkpred.TruthSet(g, tr.NewEdgesBetween(cuts[i], cuts[i+1]))
	budget := *k
	if budget <= 0 {
		budget = len(truth)
	}

	var pred []linkpred.Pair
	switch {
	case *alg == "SVM":
		_, res, err := linkpred.TrainSVM(tr, cuts[i-1], cuts[i], cuts[i+1], 400, 3, 1000, opt)
		if err != nil {
			fail(err)
		}
		fmt.Printf("SVM pipeline on snowball sample: %s\n", res)
		return
	case *filter != "":
		tk := linkpred.NewTracker(tr)
		fc := linkpred.FilterConfigFor(*filter)
		pred, err = linkpred.FilteredPredict(*alg, g, tk, cuts[i].Time, budget, fc, opt)
	default:
		pred, err = linkpred.Predict(g, *alg, budget, opt)
	}
	if err != nil {
		fail(err)
	}

	correct := linkpred.CountCorrect(pred, truth)
	fmt.Printf("%s on %s (%d nodes, %d edges): %d predictions, %d correct, accuracy ratio %.1fx\n",
		*alg, tr.Name, g.NumNodes(), g.NumEdges(), len(pred), correct,
		linkpred.AccuracyRatio(correct, len(truth), g))
	show := len(pred)
	if show > 20 {
		show = 20
	}
	for _, p := range pred[:show] {
		mark := " "
		if truth[p.Key()] {
			mark = "✓"
		}
		fmt.Printf("  %s %6d -- %-6d score %.4g\n", mark, p.U, p.V, p.Score)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "linkpred: %v\n", err)
	os.Exit(1)
}

package main

import (
	"bytes"
	"strings"
	"testing"
	"text/tabwriter"

	"linkpred/internal/experiments"
)

// TestRenderAllExperiments exercises every renderer at a tiny scale,
// catching formatting regressions and panics in the printing paths.
func TestRenderAllExperiments(t *testing.T) {
	c := experiments.TestConfig()
	c.Scale = 0.1
	c.Seeds = 1
	c.SampleTarget = 80
	c.MaxTransitions = 3
	nets := experiments.LoadNetworks(c)
	for _, id := range experimentIDs {
		var buf bytes.Buffer
		w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
		if err := run(w, id, c, nets); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		w.Flush()
		out := buf.String()
		if !strings.Contains(out, "==") {
			t.Errorf("%s: missing header in output %q", id, out[:min(len(out), 80)])
		}
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short output %q", id, out)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	c := experiments.TestConfig()
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	if err := run(w, "nope", c, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestCCDFAt(t *testing.T) {
	s := experiments.Figure7Series{Degrees: []int{1, 5, 20}, Frac: []float64{1.0, 0.4, 0.1}}
	if got := ccdfAt(s, 1); got != 1.0 {
		t.Errorf("ccdfAt(1) = %v", got)
	}
	if got := ccdfAt(s, 3); got != 0.4 {
		t.Errorf("ccdfAt(3) = %v (first threshold >= 3 is 5)", got)
	}
	if got := ccdfAt(s, 100); got != 0 {
		t.Errorf("ccdfAt(100) = %v", got)
	}
}

// Command experiments regenerates the paper's tables and figures on the
// synthetic trace analogues and prints the same rows/series the paper
// reports. See DESIGN.md §3 for the experiment index.
//
// Usage:
//
//	experiments -exp all                  # everything (slow at -scale 1)
//	experiments -exp fig5 -scale 0.3      # one experiment, reduced scale
//	experiments -list                     # list experiment IDs
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"linkpred/internal/experiments"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

var experimentIDs = []string{
	"table2", "fig1", "fig2-4", "table4", "fig5", "lambda2", "fig6",
	"table5", "fig7", "fig8", "table6", "fig9", "fig10", "fig11", "fig12",
	"fig13-15", "table7", "table8", "fig16", "missing", "directed", "ensembles", "consistency",
}

// expError records one failed experiment in the metrics report.
type expError struct {
	Experiment string `json:"experiment"`
	Error      string `json:"error"`
}

// metricsDoc is the schema of the -metrics-out report: run metadata, the
// experiment list with any failures, and the full telemetry dump (counters,
// latency histograms, span tree).
type metricsDoc struct {
	GeneratedAt time.Time  `json:"generated_at"`
	GoVersion   string     `json:"go_version"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	Experiments []string   `json:"experiments"`
	Failures    []expError `json:"failures,omitempty"`
	Metrics     *obs.Dump  `json:"metrics,omitempty"`
}

func writeMetrics(path string, ids []string, failures []expError) error {
	doc := metricsDoc{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Experiments: ids,
		Failures:    failures,
	}
	if obs.Enabled() {
		doc.Metrics = obs.Snapshot()
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all' (see -list)")
	scale := flag.Float64("scale", 1.0, "trace scale factor (1.0 = reference sizes)")
	seed := flag.Int64("seed", 1, "generation seed")
	seeds := flag.Int("seeds", 5, "snowball seeds for classification experiments")
	sample := flag.Int("sample", 400, "snowball sample size (nodes)")
	stride := flag.Int("stride", 1, "evaluate every stride-th snapshot transition")
	maxTrans := flag.Int("maxtransitions", 0, "cap on transitions per network (0 = all)")
	workers := flag.Int("workers", 0, "worker budget for the sweep fan-out and the predict engine (0 = GOMAXPROCS); results are identical at any count")
	list := flag.Bool("list", false, "list experiment ids and exit")
	metricsOut := flag.String("metrics-out", "", "write the telemetry report (metadata, failures, metrics, span tree) as JSON to this path; implies -obs")
	obsOn := flag.Bool("obs", false, "enable in-process telemetry collection")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060); implies -obs")
	progress := flag.Duration("progress", 0, "log a progress line to stderr at this interval (e.g. 30s); implies -obs")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experimentIDs, "\n"))
		return
	}

	stopProgress, err := obs.Boot(*obsOn || *metricsOut != "", *debugAddr, *progress, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: obs: %v\n", err)
		os.Exit(2)
	}

	c := experiments.DefaultConfig()
	c.Scale = *scale
	c.Seed = *seed
	c.Seeds = *seeds
	c.SampleTarget = *sample
	c.Stride = *stride
	c.MaxTransitions = *maxTrans
	if *workers > 0 {
		c.Workers = *workers
		c.Opt.Workers = *workers
	}
	ctx, root := obs.StartSpan(context.Background(), "experiments")
	c.Ctx = ctx

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experimentIDs
	}
	nets := experiments.LoadNetworks(c)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	// Failed experiments are recorded (stderr + metrics report) and the
	// remaining ones still run; any failure makes the exit status non-zero.
	var failures []expError
	for _, id := range ids {
		cctx, sp := obs.StartSpan(ctx, "exp/"+id)
		cc := c
		cc.Ctx = cctx
		if err := run(w, id, cc, nets); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			failures = append(failures, expError{Experiment: id, Error: err.Error()})
		}
		sp.End()
		w.Flush()
		fmt.Println()
	}
	root.End()
	stopProgress()

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, ids, failures); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: metrics-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed\n", len(failures), len(ids))
		os.Exit(1)
	}
}

func header(w *tabwriter.Writer, title string) {
	fmt.Fprintf(w, "== %s ==\n", title)
}

func run(w *tabwriter.Writer, id string, c experiments.Config, nets []*experiments.Network) error {
	switch id {
	case "table2":
		header(w, "Table 2: dataset statistics")
		fmt.Fprintln(w, "network\tstart nodes\tstart edges\tend nodes\tend edges\tdelta\tsnapshots")
		for _, r := range experiments.Table2(c) {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
				r.Network, r.StartNodes, r.StartEdges, r.EndNodes, r.EndEdges, r.Delta, r.Snapshots)
		}
	case "fig1":
		header(w, "Figure 1: daily new nodes and edges (10-day buckets)")
		for _, s := range experiments.Figure1(c) {
			fmt.Fprintf(w, "%s\tday\tnew nodes\tnew edges\n", s.Network)
			for d := 0; d < len(s.Day); d += 10 {
				nn, ne := 0, 0
				for j := d; j < d+10 && j < len(s.Day); j++ {
					nn += s.NewNodes[j]
					ne += s.NewEdges[j]
				}
				fmt.Fprintf(w, "\t%d\t%d\t%d\n", d, nn, ne)
			}
		}
	case "fig2-4":
		header(w, "Figures 2-4: average degree / path length / clustering")
		fmt.Fprintln(w, "network\tedges\tavg degree\tavg path len\tclustering")
		for _, s := range experiments.Figures2to4(c) {
			for i := range s.EdgeCount {
				fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.3f\n",
					s.Network, s.EdgeCount[i], s.AvgDegree[i], s.PathLen[i], s.Clustering[i])
			}
		}
	case "table4":
		header(w, "Table 4: best absolute accuracy (%)")
		fmt.Fprintln(w, "network\talgorithm\tbest accuracy %")
		for _, r := range experiments.Table4(c, nets) {
			fmt.Fprintf(w, "%s\t%s\t%.2f\n", r.Network, r.Alg, r.BestAccuracyPct)
		}
	case "fig5":
		header(w, "Figure 5: accuracy ratio over network growth")
		fmt.Fprintln(w, "network\talgorithm\tedge counts → accuracy ratios")
		for _, s := range experiments.Figure5(c, nets) {
			var b strings.Builder
			for i := range s.EdgeCount {
				fmt.Fprintf(&b, "%d:%.1f ", s.EdgeCount[i], s.Ratio[i])
			}
			fmt.Fprintf(w, "%s\t%s\t%s\n", s.Network, s.Alg, b.String())
		}
	case "lambda2":
		header(w, "§4.2: correlation of top-metric accuracy with λ₂")
		fmt.Fprintln(w, "network\ttop metrics\tmean Pearson r")
		for _, r := range experiments.CorrelateLambda2(c, nets, 6) {
			fmt.Fprintf(w, "%s\t%s\t%.2f\n", r.Network, strings.Join(r.TopMetrics, ","), r.Correlation)
		}
	case "fig6":
		header(w, "Figure 6: decision tree choosing the best metric algorithm")
		res := experiments.Figure6(c, nets)
		wins := map[string]int{}
		for _, winner := range res.Winners {
			wins[winner]++
		}
		var names []string
		for n := range wins {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "winner\tsnapshots")
		for _, n := range names {
			fmt.Fprintf(w, "%s\t%d\n", n, wins[n])
		}
		fmt.Fprintln(w, "multi-class tree rules:")
		for _, rule := range res.Rules {
			fmt.Fprintf(w, "\t%s\n", rule)
		}
		fmt.Fprintln(w, "per-algorithm 'good prediction' rules (within 90% of optimal):")
		var algs []string
		for a := range res.BinaryRules {
			algs = append(algs, a)
		}
		sort.Strings(algs)
		for _, a := range algs {
			for _, rule := range res.BinaryRules[a] {
				fmt.Fprintf(w, "\t%s:\t%s\n", a, rule)
			}
		}
	case "table5":
		header(w, "Table 5: share of edges involving the 0.1% most-predicted nodes (renren)")
		fmt.Fprintln(w, "algorithm\tpredicted edges\treal edges")
		n := netByName(nets, "renren")
		rows := experiments.Table5(c, n, []predict.Algorithm{
			predict.Rescal, predict.LRW, predict.KatzLR, predict.LP, predict.BCN, predict.BAA, predict.BRA,
		})
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\n", r.Alg, 100*r.PredictedShare, 100*r.RealShare)
		}
	case "fig7":
		header(w, "Figure 7: degree CCDF of nodes in predicted edges (renren)")
		series := experiments.Figure7(c, netByName(nets, "renren"), fig7Algs())
		fmt.Fprintln(w, "series\tP(deg>=1)\tP(deg>=10)\tP(deg>=50)\tP(deg>=100)")
		for _, s := range series {
			fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.3f\n", s.Label,
				ccdfAt(s, 1), ccdfAt(s, 10), ccdfAt(s, 50), ccdfAt(s, 100))
		}
	case "fig8":
		header(w, "Figure 8: idle-time CDF of nodes in predicted edges (renren)")
		series := experiments.Figure8(c, netByName(nets, "renren"), fig7Algs())
		fmt.Fprintln(w, "series\tmedian days\tP(idle<=3d)\tP(idle<=10d)")
		for _, s := range series {
			fmt.Fprintf(w, "%s\t%.1f\t%.3f\t%.3f\n", s.Label,
				s.CDF.Quantile(0.5), s.CDF.FractionBelow(3), s.CDF.FractionBelow(10))
		}
	case "table6":
		header(w, "Table 6: classification data instances")
		fmt.Fprintln(w, "network\tsize\ttrain nodes\ttrain edges\ttest nodes\ttest edges\tsample")
		for _, r := range experiments.Table6(c, nets) {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
				r.Network, r.Size, r.TrainNodes, r.TrainEdges, r.TestNodes, r.TestEdges, r.SampleSize)
		}
	case "fig9":
		header(w, "Figure 9: four classifiers at θ = 1:1 and 1:50 (facebook small)")
		rows, err := experiments.Figure9(c, netByName(nets, "facebook"))
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "classifier\tθ\taccuracy ratio (mean ± std)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t1:%.0f\t%.1f ± %.1f\n", r.Classifier, r.Theta, r.Ratio.Mean, r.Ratio.Std)
		}
	case "fig10":
		header(w, "Figure 10: SVM accuracy ratio vs undersampling ratio θ")
		rows, err := experiments.Figure10(c, nets)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "network\tθ\taccuracy ratio (mean ± std)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t1:%.0f\t%.1f ± %.1f\n", r.Network, r.Theta, r.Ratio.Mean, r.Ratio.Std)
		}
	case "fig11":
		header(w, "Figure 11: metrics vs SVM on identical sampled data")
		rows, err := experiments.Figure11(c, nets)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "network\tmethod\taccuracy ratio (mean ± std)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.1f ± %.1f\n", r.Network, r.Method, r.Ratio.Mean, r.Ratio.Std)
		}
	case "fig12":
		header(w, "Figure 12: cumulative normalized SVM coefficient of top-N metrics")
		series, err := experiments.Figure12(c, nets)
		if err != nil {
			return err
		}
		for _, s := range series {
			fmt.Fprintf(w, "%s\trank\tmetric\tcumulative |w|\n", s.Network)
			for i := range s.MetricRank {
				fmt.Fprintf(w, "\t%d\t%s\t%.3f\n", i+1, s.MetricRank[i], s.Cumulative[i])
			}
		}
	case "fig13-15":
		header(w, "Figures 13-15: temporal CDFs of positive vs negative pairs")
		fmt.Fprintln(w, "network\tmeasure\tpositive\tnegative")
		for _, r := range experiments.Figures13to15(c, nets) {
			fmt.Fprintf(w, "%s\tP(active idle <= 3d)\t%.3f\t%.3f\n", r.Network,
				r.PosActiveIdle.FractionBelow(3), r.NegActiveIdle.FractionBelow(3))
			fmt.Fprintf(w, "%s\tP(inactive idle <= 20d)\t%.3f\t%.3f\n", r.Network,
				r.PosInactiveIdle.FractionBelow(20), r.NegInactiveIdle.FractionBelow(20))
			fmt.Fprintf(w, "%s\tP(7-day edges >= 3)\t%.3f\t%.3f\n", r.Network,
				1-r.PosNewEdges.FractionBelow(2.5), 1-r.NegNewEdges.FractionBelow(2.5))
			fmt.Fprintf(w, "%s\tP(CN gap <= 10d)\t%.3f\t%.3f\n", r.Network,
				r.PosCNGap.FractionBelow(10), r.NegCNGap.FractionBelow(10))
		}
	case "table7":
		header(w, "Table 7: temporal filter parameters")
		fmt.Fprintln(w, "network\td_act\td_inact\twindow d\tE_new\td_CN")
		for _, r := range experiments.Table7(nets) {
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%d\t%d\t%.0f\n", r.Network,
				r.Config.ActIdleDays, r.Config.InactIdleDays, r.Config.WindowDays,
				r.Config.MinNewEdges, r.Config.CNGapDays)
		}
	case "table8":
		header(w, "Table 8: accuracy ratio after filtering / before filtering")
		rows, err := experiments.Table8(c, nets)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "network\tmethod\tunfiltered\tfiltered\timprovement")
		for _, r := range rows {
			imp := "-"
			if r.Unfiltered > 0 {
				imp = fmt.Sprintf("%.1fx", r.Improvement)
			}
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%s\n", r.Network, r.Method, r.Unfiltered, r.Filtered, imp)
		}
	case "fig16":
		header(w, "Figure 16: temporal filters vs time-series (MA) models")
		rows, err := experiments.Figure16(c, nets, 4)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "network\tmetric\tbasic\tbasic+filter\ttime model\ttime model+filter")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\n",
				r.Network, r.Metric, r.Basic, r.BasicFiltered, r.TimeModel, r.TimeModelFiltered)
		}
	case "missing":
		header(w, "Extra: missing-link detection (hide 10%, recover)")
		rows, err := experiments.MissingLinks(c, nets)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "network\talgorithm\trecovered\tratio\tAUC")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%d/%d\t%.1fx\t%.3f\n", r.Network, r.Alg, r.Recovered, r.Hidden, r.Ratio, r.AUC)
		}
	case "directed":
		header(w, "Extra: directed link prediction (initiator → target)")
		rows, err := experiments.Directed(c, nets)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "network\tscorer\thits\tratio")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%d\t%.1fx\n", r.Network, r.Scorer, r.Hits, r.Ratio)
		}
	case "ensembles":
		header(w, "Extra: ensemble size vs accuracy (intro claim)")
		rows, err := experiments.Ensembles(c, netByName(nets, "renren"))
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "network\tmethod\taccuracy ratio (mean ± std)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.1f ± %.1f\n", r.Network, r.Method, r.Ratio.Mean, r.Ratio.Std)
		}
	case "consistency":
		header(w, "Extra: metric-ranking consistency, small vs large instances")
		rows, err := experiments.Consistency(c, nets)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "network\tSpearman\tsmall top\tlarge top")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.2f\t%s\t%s\n", r.Network, r.Spearman, r.SmallTop, r.LargeTop)
		}
	default:
		return fmt.Errorf("unknown experiment %q (use -list)", id)
	}
	return nil
}

func netByName(nets []*experiments.Network, name string) *experiments.Network {
	for _, n := range nets {
		if n.Cfg.Name == name {
			return n
		}
	}
	panic("unknown network " + name)
}

func fig7Algs() []predict.Algorithm {
	return []predict.Algorithm{predict.BCN, predict.JC, predict.LP, predict.PPR, predict.Rescal}
}

func ccdfAt(s experiments.Figure7Series, deg int) float64 {
	// Degrees ascending, Frac[i] = P(degree >= Degrees[i]); P(degree >=
	// deg) is the fraction at the first threshold >= deg.
	for i, d := range s.Degrees {
		if d >= deg {
			return s.Frac[i]
		}
	}
	return 0
}

// Command bench times full top-k prediction for every evaluated algorithm
// at 1 worker and at N workers on one synthetic snapshot, and writes the
// timings to a JSON file. It is the machine-readable companion of
// BenchmarkPredictParallel: CI and the docs consume the emitted file to
// track the parallel engine's speedup across hardware.
//
// Usage:
//
//	bench                         # renren @ 0.2, GOMAXPROCS workers
//	bench -preset youtube -scale 0.1 -workers 8 -out BENCH_predict.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"linkpred/internal/gen"
	"linkpred/internal/predict"
)

// result is one (algorithm, workers) timing row of BENCH_predict.json.
type result struct {
	Algorithm string  `json:"algorithm"`
	Workers   int     `json:"workers"`
	NsPerOp   int64   `json:"ns_per_op"`
	Speedup   float64 `json:"speedup_vs_serial"`
}

// output is the file-level schema.
type output struct {
	Preset     string   `json:"preset"`
	Scale      float64  `json:"scale"`
	Nodes      int      `json:"nodes"`
	Edges      int      `json:"edges"`
	K          int      `json:"k"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []result `json:"results"`
}

func preset(name string, seed int64) (gen.Config, error) {
	switch name {
	case "facebook":
		return gen.Facebook(seed), nil
	case "renren":
		return gen.Renren(seed), nil
	case "youtube":
		return gen.YouTube(seed), nil
	}
	return gen.Config{}, fmt.Errorf("unknown preset %q (facebook, renren, youtube)", name)
}

// measure times fn until mintime has elapsed (at least once, at most maxIters),
// returning mean ns/op.
func measure(mintime time.Duration, maxIters int, fn func()) int64 {
	var total time.Duration
	iters := 0
	for total < mintime && iters < maxIters {
		start := time.Now()
		fn()
		total += time.Since(start)
		iters++
	}
	return total.Nanoseconds() / int64(iters)
}

func main() {
	presetName := flag.String("preset", "renren", "trace preset: facebook, renren, youtube")
	scale := flag.Float64("scale", 0.2, "trace scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	k := flag.Int("k", 200, "top-k prediction budget")
	workers := flag.Int("workers", 0, "parallel worker count to compare against serial (0 = GOMAXPROCS)")
	out := flag.String("out", "BENCH_predict.json", "output path")
	mintime := flag.Duration("mintime", 2*time.Second, "minimum sampling time per (algorithm, workers) cell")
	maxIters := flag.Int("maxiters", 50, "iteration cap per cell")
	flag.Parse()

	cfg, err := preset(*presetName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg = cfg.Scaled(*scale)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	g := tr.SnapshotAtEdge(cuts[len(cuts)-2].EdgeCount)

	par := *workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	counts := []int{1}
	if par != 1 {
		counts = append(counts, par)
	}

	o := output{
		Preset:     *presetName,
		Scale:      *scale,
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		K:          *k,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, alg := range predict.All() {
		var serialNs int64
		for _, w := range counts {
			opt := predict.DefaultOptions()
			opt.Workers = w
			// Warm once outside the timed loop (lazy generator state, cache
			// warmup) and sanity-check the algorithm produces output.
			if len(alg.Predict(g, *k, opt)) == 0 {
				fmt.Fprintf(os.Stderr, "%s produced no predictions\n", alg.Name())
				os.Exit(1)
			}
			ns := measure(*mintime, *maxIters, func() { alg.Predict(g, *k, opt) })
			speedup := 0.0
			if w == 1 {
				serialNs = ns
				speedup = 1.0
			} else if ns > 0 {
				speedup = float64(serialNs) / float64(ns)
			}
			o.Results = append(o.Results, result{
				Algorithm: alg.Name(),
				Workers:   w,
				NsPerOp:   ns,
				Speedup:   speedup,
			})
			fmt.Printf("%-8s workers=%-2d %12s/op  speedup=%.2fx\n",
				alg.Name(), w, time.Duration(ns), speedup)
		}
	}

	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

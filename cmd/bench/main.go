// Command bench times full top-k prediction for every evaluated algorithm
// at 1 worker and at N workers on one synthetic snapshot, and writes the
// timings to a JSON file. It is the machine-readable companion of
// BenchmarkPredictParallel: CI and the docs consume the emitted file to
// track the parallel engine's speedup across hardware.
//
// Usage:
//
//	bench                         # renren @ 0.2, GOMAXPROCS workers
//	bench -preset youtube -scale 0.1 -workers 8 -out BENCH_predict.json
//	bench -compare old.json       # measure, then diff against a previous file
//	bench -algs Katz,Rescal,LRW   # benchmark a subset by name
//
// Each algorithm is warmed once before timing, so per-snapshot cached
// artifacts (CSR adjacency, latent factor matrices — see internal/snapcache)
// are built outside the timed loop: the latent-family rows measure scoring
// against warm factors, the steady state of an evaluation sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"linkpred/internal/gen"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

// result is one (algorithm, workers) timing row of BENCH_predict.json.
type result struct {
	Algorithm string  `json:"algorithm"`
	Workers   int     `json:"workers"`
	NsPerOp   int64   `json:"ns_per_op"`
	Speedup   float64 `json:"speedup_vs_serial"`
}

// output is the file-level schema. The metadata fields stamp which build
// and machine produced the numbers, so checked-in BENCH_predict.json files
// from different runs stay comparable.
type output struct {
	Preset     string    `json:"preset"`
	Scale      float64   `json:"scale"`
	Nodes      int       `json:"nodes"`
	Edges      int       `json:"edges"`
	K          int       `json:"k"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	GoVersion  string    `json:"go_version"`
	GitSHA     string    `json:"git_sha,omitempty"`
	Timestamp  time.Time `json:"timestamp"`
	Results    []result  `json:"results"`
	// Telemetry carries the obs dump when collection was enabled (-obs,
	// -debug-addr or -progress), exposing per-algorithm latency histograms
	// and engine chunk-claim counts next to the wall-clock timings.
	Telemetry *obs.Dump `json:"telemetry,omitempty"`
}

// gitSHA resolves the commit of the running binary: the VCS stamp embedded
// by `go build` when available, otherwise the working tree HEAD, otherwise
// empty (the field is omitted).
func gitSHA() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		return strings.TrimSpace(string(out))
	}
	return ""
}

// loadOutput reads a previously written BENCH_predict.json.
func loadOutput(path string) (*output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var o output
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &o, nil
}

// compareOutputs diffs two benchmark files row by row on the
// (algorithm, workers) key and prints per-algorithm speedup (old/new > 1)
// or regression (< 1). Rows present in only one file are listed as such.
// It returns the number of regressions beyond the noise threshold.
func compareOutputs(w io.Writer, old, cur *output, threshold float64) int {
	type cell struct {
		alg     string
		workers int
	}
	prev := make(map[cell]int64, len(old.Results))
	for _, r := range old.Results {
		prev[cell{r.Algorithm, r.Workers}] = r.NsPerOp
	}
	if old.Preset != cur.Preset || old.Scale != cur.Scale || old.GOMAXPROCS != cur.GOMAXPROCS {
		fmt.Fprintf(w, "note: configs differ (old %s@%g procs=%d, new %s@%g procs=%d); ratios are cross-config\n",
			old.Preset, old.Scale, old.GOMAXPROCS, cur.Preset, cur.Scale, cur.GOMAXPROCS)
	}
	regressions := 0
	fmt.Fprintf(w, "%-10s %-9s %14s %14s %9s\n", "algorithm", "workers", "old ns/op", "new ns/op", "old/new")
	for _, r := range cur.Results {
		oldNs, ok := prev[cell{r.Algorithm, r.Workers}]
		if !ok {
			fmt.Fprintf(w, "%-10s workers=%-2d %14s %14d %9s\n", r.Algorithm, r.Workers, "-", r.NsPerOp, "new")
			continue
		}
		delete(prev, cell{r.Algorithm, r.Workers})
		ratio := 0.0
		if r.NsPerOp > 0 {
			ratio = float64(oldNs) / float64(r.NsPerOp)
		}
		tag := ""
		if ratio < threshold {
			tag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-10s workers=%-2d %14d %14d %8.2fx%s\n", r.Algorithm, r.Workers, oldNs, r.NsPerOp, ratio, tag)
	}
	for c := range prev {
		fmt.Fprintf(w, "%-10s workers=%-2d only in old file\n", c.alg, c.workers)
	}
	return regressions
}

func preset(name string, seed int64) (gen.Config, error) {
	switch name {
	case "facebook":
		return gen.Facebook(seed), nil
	case "renren":
		return gen.Renren(seed), nil
	case "youtube":
		return gen.YouTube(seed), nil
	}
	return gen.Config{}, fmt.Errorf("unknown preset %q (facebook, renren, youtube)", name)
}

// measure times fn until mintime has elapsed (at least once, at most maxIters),
// returning mean ns/op.
func measure(mintime time.Duration, maxIters int, fn func()) int64 {
	var total time.Duration
	iters := 0
	for total < mintime && iters < maxIters {
		start := time.Now()
		fn()
		total += time.Since(start)
		iters++
	}
	return total.Nanoseconds() / int64(iters)
}

func main() {
	presetName := flag.String("preset", "renren", "trace preset: facebook, renren, youtube")
	scale := flag.Float64("scale", 0.2, "trace scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	k := flag.Int("k", 200, "top-k prediction budget")
	workers := flag.Int("workers", 0, "parallel worker count to compare against serial (0 = GOMAXPROCS)")
	out := flag.String("out", "BENCH_predict.json", "output path")
	mintime := flag.Duration("mintime", 2*time.Second, "minimum sampling time per (algorithm, workers) cell")
	maxIters := flag.Int("maxiters", 50, "iteration cap per cell")
	compare := flag.String("compare", "", "previous BENCH_predict.json to diff the fresh results against")
	algsFlag := flag.String("algs", "", "comma-separated algorithm names to benchmark (default: the evaluated set plus SRW)")
	obsOn := flag.Bool("obs", false, "collect telemetry and embed the dump in the output JSON")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address while benchmarking; implies -obs")
	progress := flag.Duration("progress", 0, "log a progress line to stderr at this interval; implies -obs")
	flag.Parse()

	stopProgress, err := obs.Boot(*obsOn, *debugAddr, *progress, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: obs: %v\n", err)
		os.Exit(2)
	}
	defer stopProgress()

	cfg, err := preset(*presetName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg = cfg.Scaled(*scale)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	g := tr.SnapshotAtEdge(cuts[len(cuts)-2].EdgeCount)

	par := *workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	counts := []int{1}
	if par != 1 {
		counts = append(counts, par)
	}

	o := output{
		Preset:     *presetName,
		Scale:      *scale,
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		K:          *k,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		GitSHA:     gitSHA(),
		Timestamp:  time.Now().UTC(),
	}
	algs := append(predict.All(), predict.SRW)
	if *algsFlag != "" {
		algs = nil
		for _, name := range strings.Split(*algsFlag, ",") {
			alg, err := predict.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: -algs: %v\n", err)
				os.Exit(2)
			}
			algs = append(algs, alg)
		}
	}
	for _, alg := range algs {
		var serialNs int64
		for _, w := range counts {
			opt := predict.DefaultOptions()
			opt.Workers = w
			// Warm once outside the timed loop (lazy generator state, cache
			// warmup) and sanity-check the algorithm produces output.
			if len(alg.Predict(g, *k, opt)) == 0 {
				fmt.Fprintf(os.Stderr, "%s produced no predictions\n", alg.Name())
				os.Exit(1)
			}
			ns := measure(*mintime, *maxIters, func() { alg.Predict(g, *k, opt) })
			speedup := 0.0
			if w == 1 {
				serialNs = ns
				speedup = 1.0
			} else if ns > 0 {
				speedup = float64(serialNs) / float64(ns)
			}
			o.Results = append(o.Results, result{
				Algorithm: alg.Name(),
				Workers:   w,
				NsPerOp:   ns,
				Speedup:   speedup,
			})
			fmt.Printf("%-8s workers=%-2d %12s/op  speedup=%.2fx\n",
				alg.Name(), w, time.Duration(ns), speedup)
		}
	}

	if obs.Enabled() {
		o.Telemetry = obs.Snapshot()
	}
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *compare != "" {
		old, err := loadOutput(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -compare: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("\ncomparing against %s (%s)\n", *compare, old.Timestamp.Format(time.RFC3339))
		if n := compareOutputs(os.Stdout, old, &o, 0.95); n > 0 {
			fmt.Printf("%d regression(s) beyond 5%%\n", n)
		}
	}
}

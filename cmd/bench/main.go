// Command bench times full top-k prediction for every evaluated algorithm
// at 1 worker and at N workers on one synthetic snapshot, and writes the
// timings to a JSON file. It is the machine-readable companion of
// BenchmarkPredictParallel: CI and the docs consume the emitted file to
// track the parallel engine's speedup across hardware.
//
// Usage:
//
//	bench                         # renren @ 0.2, GOMAXPROCS workers
//	bench -preset youtube -scale 0.1 -workers 8 -out BENCH_predict.json
//	bench -compare old.json       # measure, then diff against a previous file
//	bench -algs Katz,Rescal,LRW   # benchmark a subset by name
//	bench -scaling renren-100k    # local family: pruned vs exhaustive sweep
//	bench -short -scaling renren-100k -compare BENCH_predict.json
//
// The renren-100k and renren-1m presets are pre-sized (use -scale 1 with
// them); -scaling generates each named preset at its native size and times
// the local metrics' pruned candidate engine against the exhaustive wedge
// sweep (Options.ExhaustiveSweep), asserting bit-identical top-k output.
// -compare flags any algorithm regressing more than 10% against a previous
// file; -fail-on-regress turns that into a nonzero exit for CI.
//
// Each algorithm is warmed once before timing, so per-snapshot cached
// artifacts (CSR adjacency, latent factor matrices — see internal/snapcache)
// are built outside the timed loop: the latent-family rows measure scoring
// against warm factors, the steady state of an evaluation sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

// result is one (algorithm, workers) timing row of BENCH_predict.json.
type result struct {
	Algorithm string  `json:"algorithm"`
	Workers   int     `json:"workers"`
	NsPerOp   int64   `json:"ns_per_op"`
	Speedup   float64 `json:"speedup_vs_serial"`
}

// scalingResult is one (preset, algorithm, workers) row of the -scaling
// sweep: the pruned candidate engine timed against the exhaustive wedge
// sweep on the same graph, with a bit-identity check on the top-k output.
type scalingResult struct {
	Preset       string  `json:"preset"`
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	Algorithm    string  `json:"algorithm"`
	Workers      int     `json:"workers"`
	PrunedNs     int64   `json:"pruned_ns_per_op"`
	ExhaustiveNs int64   `json:"exhaustive_ns_per_op"`
	Speedup      float64 `json:"speedup_vs_exhaustive"`
	// AllPairsNs times scoring every one of the N(N-1)/2 pairs through the
	// batch path (-allpairs) — the O(N²) wall the candidate engine escapes.
	AllPairsNs      int64   `json:"all_pairs_ns_per_op,omitempty"`
	SpeedupAllPairs float64 `json:"speedup_vs_all_pairs,omitempty"`
	Identical       bool    `json:"identical_topk"`
}

// shardResult is one (preset, algorithm, workers, shards) row of the
// -shards sweep: the source-sharded scatter/gather path (DESIGN.md §12)
// timed against the unrestricted single sweep. Each shard's restricted
// Predict is timed on its own and the simulated cluster wall-clock is
// max(per-shard ns) + merge ns — the honest model for one-machine
// measurement of an N-machine deployment (shards run concurrently on
// separate workers in production, sequentially here).
type shardResult struct {
	Preset    string `json:"preset"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	Algorithm string `json:"algorithm"`
	Workers   int    `json:"workers"`
	Shards    int    `json:"shards"`
	// SingleNs is the unrestricted sweep; MaxShardNs/SumShardNs the
	// slowest and total per-shard restricted sweeps; MergeNs the
	// gather-side MergeTopK fold of the partial lists.
	SingleNs   int64 `json:"single_ns_per_op"`
	MaxShardNs int64 `json:"max_shard_ns_per_op"`
	SumShardNs int64 `json:"sum_shard_ns_per_op"`
	MergeNs    int64 `json:"merge_ns_per_op"`
	WallNs     int64 `json:"wall_ns_per_op"`
	// Speedup is SingleNs / WallNs — the scale-out win at this shard
	// count, net of merge overhead and shard imbalance.
	Speedup float64 `json:"speedup_vs_single"`
	// Identical confirms the merged top-k is bit-identical to the single
	// sweep — the cluster's core determinism contract.
	Identical bool `json:"identical_topk"`
}

// memoryResult is one (preset, shards, shard) row of the -partition memory
// sweep: the resident adjacency bytes of one ownership-partitioned shard
// (graph.PartitionView at the wedge-weighted boundaries) against the full
// snapshot, plus the merged-top-k identity check that makes the smaller
// footprint trustworthy. Shard 0 saves nothing by construction — its
// min-endpoint rows are the duplicate detector — so read the per-shard
// fractions, not an average (DESIGN.md §13).
type memoryResult struct {
	Preset           string  `json:"preset"`
	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	Shards           int     `json:"shards"`
	Shard            int     `json:"shard"`
	RangeLo          int     `json:"range_lo"`
	RangeHi          int     `json:"range_hi"`
	FullBytes        int64   `json:"full_bytes"`
	PartitionedBytes int64   `json:"partitioned_bytes"`
	Fraction         float64 `json:"fraction_of_full"`
	Identical        bool    `json:"identical_topk"`
}

// publishResult is one batch-size row of the -publish sweep: the
// incremental builder's delta publish (copy-on-write row patching,
// DESIGN.md §13) timed and allocation-counted against rebuilding the
// snapshot from scratch. AllocsPerOp is the regression-gated number — it
// is a deterministic function of the trace and batch schedule, unlike the
// timings, so CI compares counts, never times.
type publishResult struct {
	Preset      string  `json:"preset"`
	Edges       int     `json:"edges"`
	Batch       int     `json:"batch"`
	Publishes   int     `json:"publishes"`
	DeltaNs     int64   `json:"delta_publish_ns_per_op"`
	RebuildNs   int64   `json:"rebuild_ns_per_op"`
	Speedup     float64 `json:"speedup_vs_rebuild"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	DeltaRows   float64 `json:"delta_rows_per_op"`
}

// output is the file-level schema. The metadata fields stamp which build
// and machine produced the numbers, so checked-in BENCH_predict.json files
// from different runs stay comparable.
type output struct {
	Preset     string    `json:"preset"`
	Scale      float64   `json:"scale"`
	Nodes      int       `json:"nodes"`
	Edges      int       `json:"edges"`
	K          int       `json:"k"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	GoVersion  string    `json:"go_version"`
	GitSHA     string    `json:"git_sha,omitempty"`
	Timestamp  time.Time `json:"timestamp"`
	Results    []result  `json:"results"`
	// Scaling holds the -scaling sweep rows; each row carries its own
	// preset and graph size, so rows from different scale points coexist
	// in one file.
	Scaling []scalingResult `json:"scaling,omitempty"`
	// Sharded holds the -shards scatter/gather rows.
	Sharded []shardResult `json:"sharded,omitempty"`
	// Memory holds the -partition per-shard residency rows; Publish the
	// -publish delta-publish rows.
	Memory  []memoryResult  `json:"memory,omitempty"`
	Publish []publishResult `json:"publish,omitempty"`
	// Telemetry carries the obs dump when collection was enabled (-obs,
	// -debug-addr or -progress), exposing per-algorithm latency histograms
	// and engine chunk-claim counts next to the wall-clock timings.
	Telemetry *obs.Dump `json:"telemetry,omitempty"`
}

// gitSHA resolves the commit of the running binary: the VCS stamp embedded
// by `go build` when available, otherwise the working tree HEAD, otherwise
// empty (the field is omitted).
func gitSHA() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		return strings.TrimSpace(string(out))
	}
	return ""
}

// loadOutput reads a previously written BENCH_predict.json.
func loadOutput(path string) (*output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var o output
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &o, nil
}

// compareOutputs diffs two benchmark files row by row on the
// (algorithm, workers) key and prints per-algorithm speedup (old/new > 1)
// or regression (< 1). Rows present in only one file are listed as such.
// It returns the number of regressions beyond the noise threshold, and
// separately the deterministic subset (memory/publish rows: resident bytes
// and alloc counts are machine-independent, so those regressions are safe
// to gate CI on even when the timing rows came from different hardware).
func compareOutputs(w io.Writer, old, cur *output, threshold float64) (regressions, deterministic int) {
	type cell struct {
		alg     string
		workers int
	}
	prev := make(map[cell]int64, len(old.Results))
	for _, r := range old.Results {
		prev[cell{r.Algorithm, r.Workers}] = r.NsPerOp
	}
	if old.Preset != cur.Preset || old.Scale != cur.Scale {
		// Main rows time different graphs — ratios would be noise, and a
		// REGRESSION tag on them would be a lie. The scaling rows carry
		// their own preset per row, so those still compare.
		fmt.Fprintf(w, "note: main configs differ (old %s@%g, new %s@%g); skipping main rows\n",
			old.Preset, old.Scale, cur.Preset, cur.Scale)
		det := compareMemory(w, old, cur, threshold) + comparePublish(w, old, cur, threshold)
		return compareScaling(w, old, cur, threshold) + compareSharded(w, old, cur, threshold) + det, det
	}
	if old.GOMAXPROCS != cur.GOMAXPROCS {
		fmt.Fprintf(w, "note: GOMAXPROCS differs (old %d, new %d); parallel-row ratios are cross-machine\n",
			old.GOMAXPROCS, cur.GOMAXPROCS)
	}
	fmt.Fprintf(w, "%-10s %-9s %14s %14s %9s\n", "algorithm", "workers", "old ns/op", "new ns/op", "old/new")
	for _, r := range cur.Results {
		oldNs, ok := prev[cell{r.Algorithm, r.Workers}]
		if !ok {
			fmt.Fprintf(w, "%-10s workers=%-2d %14s %14d %9s\n", r.Algorithm, r.Workers, "-", r.NsPerOp, "new")
			continue
		}
		delete(prev, cell{r.Algorithm, r.Workers})
		ratio := 0.0
		if r.NsPerOp > 0 {
			ratio = float64(oldNs) / float64(r.NsPerOp)
		}
		tag := ""
		if ratio < threshold {
			tag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-10s workers=%-2d %14d %14d %8.2fx%s\n", r.Algorithm, r.Workers, oldNs, r.NsPerOp, ratio, tag)
	}
	for c := range prev {
		fmt.Fprintf(w, "%-10s workers=%-2d only in old file\n", c.alg, c.workers)
	}
	regressions += compareScaling(w, old, cur, threshold)
	regressions += compareSharded(w, old, cur, threshold)
	deterministic = compareMemory(w, old, cur, threshold) + comparePublish(w, old, cur, threshold)
	regressions += deterministic
	return regressions, deterministic
}

// compareMemory diffs the -partition rows on (preset, shards, shard).
// Resident bytes are a deterministic function of the snapshot and the
// boundaries, so any growth beyond the threshold is a real footprint
// regression, not timing noise.
func compareMemory(w io.Writer, old, cur *output, threshold float64) int {
	if len(old.Memory) == 0 || len(cur.Memory) == 0 {
		return 0
	}
	type cell struct {
		preset string
		shards int
		shard  int
	}
	prev := make(map[cell]int64, len(old.Memory))
	for _, r := range old.Memory {
		prev[cell{r.Preset, r.Shards, r.Shard}] = r.PartitionedBytes
	}
	regressions := 0
	fmt.Fprintf(w, "\nmemory rows (partitioned resident bytes):\n")
	fmt.Fprintf(w, "%-12s %-8s %-7s %14s %14s %9s\n", "preset", "shards", "shard", "old bytes", "new bytes", "old/new")
	for _, r := range cur.Memory {
		oldB, ok := prev[cell{r.Preset, r.Shards, r.Shard}]
		if !ok {
			fmt.Fprintf(w, "%-12s shards=%-2d shard=%-2d %14s %14d %9s\n", r.Preset, r.Shards, r.Shard, "-", r.PartitionedBytes, "new")
			continue
		}
		ratio := 0.0
		if r.PartitionedBytes > 0 {
			ratio = float64(oldB) / float64(r.PartitionedBytes)
		}
		tag := ""
		if ratio < threshold {
			tag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-12s shards=%-2d shard=%-2d %14d %14d %8.2fx%s\n", r.Preset, r.Shards, r.Shard, oldB, r.PartitionedBytes, ratio, tag)
	}
	return regressions
}

// comparePublish diffs the -publish rows on (preset, batch), gating on the
// allocation COUNT per publish — deterministic for a fixed trace and batch
// schedule — never on the timings, which vary with the machine.
func comparePublish(w io.Writer, old, cur *output, threshold float64) int {
	if len(old.Publish) == 0 || len(cur.Publish) == 0 {
		return 0
	}
	type cell struct {
		preset string
		batch  int
	}
	prev := make(map[cell]int64, len(old.Publish))
	for _, r := range old.Publish {
		prev[cell{r.Preset, r.Batch}] = r.AllocsPerOp
	}
	regressions := 0
	fmt.Fprintf(w, "\npublish rows (allocs per delta publish):\n")
	fmt.Fprintf(w, "%-12s %-10s %14s %14s %9s\n", "preset", "batch", "old allocs", "new allocs", "old/new")
	for _, r := range cur.Publish {
		oldA, ok := prev[cell{r.Preset, r.Batch}]
		if !ok {
			fmt.Fprintf(w, "%-12s batch=%-5d %14s %14d %9s\n", r.Preset, r.Batch, "-", r.AllocsPerOp, "new")
			continue
		}
		ratio := 0.0
		if r.AllocsPerOp > 0 {
			ratio = float64(oldA) / float64(r.AllocsPerOp)
		}
		tag := ""
		if ratio < threshold {
			tag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-12s batch=%-5d %14d %14d %8.2fx%s\n", r.Preset, r.Batch, oldA, r.AllocsPerOp, ratio, tag)
	}
	return regressions
}

// compareScaling diffs the -scaling rows on the (preset, algorithm, workers)
// key. The pruned timing is the tracked number; rows carry their own preset,
// so they compare apples-to-apples even when the files' main configs differ.
func compareScaling(w io.Writer, old, cur *output, threshold float64) int {
	if len(old.Scaling) == 0 || len(cur.Scaling) == 0 {
		return 0
	}
	type cell struct {
		preset  string
		alg     string
		workers int
	}
	prev := make(map[cell]int64, len(old.Scaling))
	for _, r := range old.Scaling {
		prev[cell{r.Preset, r.Algorithm, r.Workers}] = r.PrunedNs
	}
	regressions := 0
	fmt.Fprintf(w, "\nscaling rows (pruned ns/op):\n")
	fmt.Fprintf(w, "%-12s %-10s %-9s %14s %14s %9s\n", "preset", "algorithm", "workers", "old ns/op", "new ns/op", "old/new")
	for _, r := range cur.Scaling {
		oldNs, ok := prev[cell{r.Preset, r.Algorithm, r.Workers}]
		if !ok {
			fmt.Fprintf(w, "%-12s %-10s workers=%-2d %14s %14d %9s\n", r.Preset, r.Algorithm, r.Workers, "-", r.PrunedNs, "new")
			continue
		}
		ratio := 0.0
		if r.PrunedNs > 0 {
			ratio = float64(oldNs) / float64(r.PrunedNs)
		}
		tag := ""
		if ratio < threshold {
			tag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-12s %-10s workers=%-2d %14d %14d %8.2fx%s\n", r.Preset, r.Algorithm, r.Workers, oldNs, r.PrunedNs, ratio, tag)
	}
	return regressions
}

// compareSharded diffs the -shards rows on the (preset, algorithm, workers,
// shards) key; the simulated cluster wall-clock is the tracked number.
func compareSharded(w io.Writer, old, cur *output, threshold float64) int {
	if len(old.Sharded) == 0 || len(cur.Sharded) == 0 {
		return 0
	}
	type cell struct {
		preset  string
		alg     string
		workers int
		shards  int
	}
	prev := make(map[cell]int64, len(old.Sharded))
	for _, r := range old.Sharded {
		prev[cell{r.Preset, r.Algorithm, r.Workers, r.Shards}] = r.WallNs
	}
	regressions := 0
	fmt.Fprintf(w, "\nsharded rows (wall ns/op = max shard + merge):\n")
	fmt.Fprintf(w, "%-12s %-10s %-9s %-8s %14s %14s %9s\n", "preset", "algorithm", "workers", "shards", "old ns/op", "new ns/op", "old/new")
	for _, r := range cur.Sharded {
		oldNs, ok := prev[cell{r.Preset, r.Algorithm, r.Workers, r.Shards}]
		if !ok {
			fmt.Fprintf(w, "%-12s %-10s workers=%-2d shards=%-2d %14s %14d %9s\n", r.Preset, r.Algorithm, r.Workers, r.Shards, "-", r.WallNs, "new")
			continue
		}
		ratio := 0.0
		if r.WallNs > 0 {
			ratio = float64(oldNs) / float64(r.WallNs)
		}
		tag := ""
		if ratio < threshold {
			tag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-12s %-10s workers=%-2d shards=%-2d %14d %14d %8.2fx%s\n", r.Preset, r.Algorithm, r.Workers, r.Shards, oldNs, r.WallNs, ratio, tag)
	}
	return regressions
}

func preset(name string, seed int64) (gen.Config, error) {
	switch name {
	case "facebook":
		return gen.Facebook(seed), nil
	case "renren":
		return gen.Renren(seed), nil
	case "youtube":
		return gen.YouTube(seed), nil
	case "renren-100k":
		return gen.Renren100K(seed), nil
	case "renren-1m":
		return gen.Renren1M(seed), nil
	}
	return gen.Config{}, fmt.Errorf("unknown preset %q (facebook, renren, youtube, renren-100k, renren-1m)", name)
}

// localFamily is the full local-metric family the pruned candidate engine
// serves: the paper's 7 local metrics plus the 5 survey extensions.
var localFamily = []string{"CN", "JC", "AA", "RA", "BCN", "BAA", "BRA", "Salton", "Sorensen", "HPI", "HDI", "LHN"}

// maxAllPairsNodes caps the -allpairs baseline: above it N(N-1)/2 scored
// pairs stop being a benchmark and become a weekend. Rows past the cap get
// no all-pairs column (logged, not silent).
const maxAllPairsNodes = 200_000

// allPairsNs times one full all-pairs scoring pass: every unordered pair
// streamed through the algorithm's batch path in fixed-size chunks. This is
// the O(N²) baseline the candidate engine replaces — measured, not
// extrapolated, so the scaling rows can state the speedup honestly. One
// pass only; at 5·10⁹ pairs the variance is negligible next to the cost.
func allPairsNs(alg predict.Algorithm, g *graph.Graph, opt predict.Options) int64 {
	const chunk = 1 << 20
	buf := make([]predict.Pair, 0, chunk)
	n := graph.NodeID(g.NumNodes())
	start := time.Now()
	for u := graph.NodeID(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			buf = append(buf, predict.Pair{U: u, V: v})
			if len(buf) == chunk {
				alg.ScorePairs(g, buf, opt)
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		alg.ScorePairs(g, buf, opt)
	}
	return time.Since(start).Nanoseconds()
}

// presetGraphs caches generated preset snapshots so -scaling and -shards
// sweeps over the same preset pay the (minutes-scale at 10⁶ nodes)
// generation cost once.
var presetGraphs = map[string]*graph.Graph{}

func presetGraph(name string, seed int64) (*graph.Graph, error) {
	if g, ok := presetGraphs[name]; ok {
		return g, nil
	}
	cfg, err := preset(name, seed)
	if err != nil {
		return nil, err
	}
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	g := tr.SnapshotAtEdge(cuts[len(cuts)-2].EdgeCount)
	presetGraphs[name] = g
	return g, nil
}

// runSharded times the cluster's scatter/gather path in process: for each
// shard count, one range-restricted Predict per source shard (DESIGN.md
// §12) plus the MergeTopK fold of the partial lists, against the
// unrestricted single sweep. Shards are timed sequentially and the
// simulated cluster wall-clock is max(per-shard ns) + merge ns — on this
// one machine that is the faithful model of N workers sweeping their
// ranges concurrently, while sum_ns shows the total compute the cluster
// spends. Bit-identity of the merged top-k against the single sweep is
// checked on every row; a mismatch is a contract violation and fails the
// run.
func runSharded(o *output, presets, algNames []string, seed int64, k int, counts, shardCounts []int, mintime time.Duration, maxIters int) error {
	for _, name := range presets {
		g, err := presetGraph(name, seed)
		if err != nil {
			return err
		}
		n := g.NumNodes()
		fmt.Printf("sharded %s: %d nodes, %d edges\n", name, n, g.NumEdges())
		for _, algName := range algNames {
			alg, err := predict.ByName(algName)
			if err != nil {
				return fmt.Errorf("-shards: %w", err)
			}
			for _, w := range counts {
				opt := predict.DefaultOptions()
				opt.Workers = w
				single := alg.Predict(g, k, opt) // warm + reference output
				singleNs := measure(mintime, maxIters, func() { alg.Predict(g, k, opt) })
				for _, shards := range shardCounts {
					// Cost-model-weighted boundaries, matching what each
					// cluster worker derives from its own snapshot for the
					// served family — equal-count ranges would leave the
					// hub-heavy low-ID shard with most of the sweep, and the
					// uncapped wedge model over-bills the naive Bayes
					// family's pruned hub sweeps (predict.CostModelFor).
					ranges := predict.WeightedSourceRangesFor(g, shards, predict.CostModelFor(alg.Name()))
					parts := make([][]predict.Pair, shards)
					var maxNs, sumNs int64
					for s := 0; s < shards; s++ {
						sOpt := opt
						r := ranges[s]
						sOpt.SourceRange = &r
						parts[s] = alg.Predict(g, k, sOpt)
						ns := measure(mintime, maxIters, func() { alg.Predict(g, k, sOpt) })
						sumNs += ns
						if ns > maxNs {
							maxNs = ns
						}
					}
					merged := predict.MergeTopK(parts, k, opt.Seed)
					mergeNs := measure(mintime, maxIters, func() { predict.MergeTopK(parts, k, opt.Seed) })
					identical := len(merged) == len(single)
					if identical {
						for i := range merged {
							if merged[i] != single[i] {
								identical = false
								break
							}
						}
					}
					wall := maxNs + mergeNs
					speedup := 0.0
					if wall > 0 {
						speedup = float64(singleNs) / float64(wall)
					}
					o.Sharded = append(o.Sharded, shardResult{
						Preset:     name,
						Nodes:      n,
						Edges:      g.NumEdges(),
						Algorithm:  alg.Name(),
						Workers:    w,
						Shards:     shards,
						SingleNs:   singleNs,
						MaxShardNs: maxNs,
						SumShardNs: sumNs,
						MergeNs:    mergeNs,
						WallNs:     wall,
						Speedup:    speedup,
						Identical:  identical,
					})
					fmt.Printf("%-12s %-8s workers=%-2d shards=%-2d single %12s/op  wall %12s/op  (max shard %s + merge %s)  speedup=%.2fx\n",
						name, alg.Name(), w, shards, time.Duration(singleNs), time.Duration(wall),
						time.Duration(maxNs), time.Duration(mergeNs), speedup)
					if !identical {
						return fmt.Errorf("-shards: %s %s workers=%d shards=%d: merged top-k differs from single sweep", name, alg.Name(), w, shards)
					}
				}
			}
		}
	}
	return nil
}

// runPartitionMemory measures the tentpole's memory story: for each preset
// and shard count, the resident adjacency bytes of every ownership-
// partitioned shard (graph.PartitionView at the wedge-weighted boundaries)
// against the full snapshot, with the merged CN top-k checked bit-identical
// to the unrestricted sweep — the number is only meaningful if the smaller
// snapshot still answers exactly.
func runPartitionMemory(o *output, presets []string, shardCounts []int, seed int64, k int) error {
	for _, name := range presets {
		g, err := presetGraph(name, seed)
		if err != nil {
			return err
		}
		n := g.NumNodes()
		full := g.ResidentBytes()
		fmt.Printf("partition %s: %d nodes, %d edges, full resident %d bytes\n", name, n, g.NumEdges(), full)
		opt := predict.DefaultOptions()
		single := predict.CN.Predict(g, k, opt)
		for _, shards := range shardCounts {
			ranges := predict.WeightedSourceRanges(g, shards)
			parts := make([][]predict.Pair, shards)
			rowBase := len(o.Memory)
			for s, r := range ranges {
				pv := graph.PartitionView(g, graph.NodeID(r.Lo), graph.NodeID(r.Hi))
				parts[s] = predict.CN.Predict(pv, k, opt)
				bytes := pv.ResidentBytes()
				frac := 0.0
				if full > 0 {
					frac = float64(bytes) / float64(full)
				}
				o.Memory = append(o.Memory, memoryResult{
					Preset:           name,
					Nodes:            n,
					Edges:            g.NumEdges(),
					Shards:           shards,
					Shard:            s,
					RangeLo:          r.Lo,
					RangeHi:          r.Hi,
					FullBytes:        full,
					PartitionedBytes: bytes,
					Fraction:         frac,
				})
				fmt.Printf("%-12s shards=%-2d shard=%-2d range=[%d,%d) resident %12d bytes  (%.3f of full)\n",
					name, shards, s, r.Lo, r.Hi, bytes, frac)
			}
			merged := predict.MergeTopK(parts, k, opt.Seed)
			identical := len(merged) == len(single)
			if identical {
				for i := range merged {
					if merged[i] != single[i] {
						identical = false
						break
					}
				}
			}
			for i := rowBase; i < len(o.Memory); i++ {
				o.Memory[i].Identical = identical
			}
			if !identical {
				return fmt.Errorf("-partition: %s shards=%d: merged top-k over partition views differs from full sweep", name, shards)
			}
		}
	}
	return nil
}

// runPublish measures the delta-CSR publish path: an incremental builder
// warmed on half the trace, then advanced one batch per publish to the end,
// against rebuilding the final snapshot from scratch. Allocations are
// counted across the whole publish loop (runtime.MemStats mallocs) and
// amortized per publish — the deterministic number the CI alloc gate
// compares; the timings are context.
func runPublish(o *output, tr *graph.Trace, presetName string, batches []int, mintime time.Duration, maxIters int) error {
	total := len(tr.Edges)
	rebuildNs := measure(mintime, maxIters, func() { tr.SnapshotAtEdge(total) })
	for _, batch := range batches {
		warm := total / 2
		if batch <= 0 || warm+batch > total {
			return fmt.Errorf("-publish: batch %d does not fit the trace (%d edges)", batch, total)
		}
		b := graph.NewIncrementalBuilder(tr)
		b.AtEdge(warm)
		rowsBefore := b.DeltaRows()
		publishes := 0
		runtime.GC()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for m := warm + batch; m <= total; m += batch {
			b.AtEdge(m)
			publishes++
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		deltaNs := elapsed.Nanoseconds() / int64(publishes)
		allocs := int64(ms1.Mallocs-ms0.Mallocs) / int64(publishes)
		deltaRows := float64(b.DeltaRows()-rowsBefore) / float64(publishes)
		speedup := 0.0
		if deltaNs > 0 {
			speedup = float64(rebuildNs) / float64(deltaNs)
		}
		o.Publish = append(o.Publish, publishResult{
			Preset:      presetName,
			Edges:       total,
			Batch:       batch,
			Publishes:   publishes,
			DeltaNs:     deltaNs,
			RebuildNs:   rebuildNs,
			Speedup:     speedup,
			AllocsPerOp: allocs,
			DeltaRows:   deltaRows,
		})
		fmt.Printf("publish %-10s batch=%-5d %12s/op  rebuild %12s/op  speedup=%.1fx  allocs/op=%d  delta rows/op=%.1f\n",
			presetName, batch, time.Duration(deltaNs), time.Duration(rebuildNs), speedup, allocs, deltaRows)
	}
	return nil
}

// runScaling generates each named preset at its native size and, for every
// local metric and worker count, times the default (pruned) Predict against
// the exhaustive sweep, checking the two top-k outputs are bit-identical.
// A mismatch is a contract violation, not noise, so it is returned as an
// error. Rows are appended to o.Scaling.
func runScaling(o *output, presets, algNames []string, seed int64, k int, counts []int, mintime time.Duration, maxIters int, allPairs bool) error {
	for _, name := range presets {
		g, err := presetGraph(name, seed)
		if err != nil {
			return err
		}
		fmt.Printf("scaling %s: %d nodes, %d edges\n", name, g.NumNodes(), g.NumEdges())
		if allPairs && g.NumNodes() > maxAllPairsNodes {
			fmt.Printf("scaling %s: skipping all-pairs baseline (%d nodes > %d; N²/2 pairs would take hours)\n",
				name, g.NumNodes(), maxAllPairsNodes)
		}
		for _, algName := range algNames {
			alg, err := predict.ByName(algName)
			if err != nil {
				return fmt.Errorf("-scaling: %w", err)
			}
			for _, w := range counts {
				opt := predict.DefaultOptions()
				opt.Workers = w
				exOpt := opt
				exOpt.ExhaustiveSweep = true
				// Warm both paths outside the timed loops and capture one
				// output each for the bit-identity check.
				pruned := alg.Predict(g, k, opt)
				exact := alg.Predict(g, k, exOpt)
				identical := len(pruned) == len(exact)
				if identical {
					for i := range pruned {
						if pruned[i] != exact[i] {
							identical = false
							break
						}
					}
				}
				prunedNs := measure(mintime, maxIters, func() { alg.Predict(g, k, opt) })
				exNs := measure(mintime, maxIters, func() { alg.Predict(g, k, exOpt) })
				speedup := 0.0
				if prunedNs > 0 {
					speedup = float64(exNs) / float64(prunedNs)
				}
				row := scalingResult{
					Preset:       name,
					Nodes:        g.NumNodes(),
					Edges:        g.NumEdges(),
					Algorithm:    alg.Name(),
					Workers:      w,
					PrunedNs:     prunedNs,
					ExhaustiveNs: exNs,
					Speedup:      speedup,
					Identical:    identical,
				}
				if allPairs && g.NumNodes() <= maxAllPairsNodes {
					row.AllPairsNs = allPairsNs(alg, g, opt)
					if prunedNs > 0 {
						row.SpeedupAllPairs = float64(row.AllPairsNs) / float64(prunedNs)
					}
				}
				o.Scaling = append(o.Scaling, row)
				fmt.Printf("%-12s %-8s workers=%-2d pruned %12s/op  exhaustive %12s/op  speedup=%.2fx",
					name, alg.Name(), w, time.Duration(prunedNs), time.Duration(exNs), speedup)
				if allPairs {
					fmt.Printf("  all-pairs %12s/op  speedup=%.1fx", time.Duration(row.AllPairsNs), row.SpeedupAllPairs)
				}
				fmt.Println()
				if !identical {
					return fmt.Errorf("-scaling: %s %s workers=%d: pruned top-k differs from exhaustive sweep", name, alg.Name(), w)
				}
			}
		}
	}
	return nil
}

// measure times fn until mintime has elapsed (at least once, at most maxIters),
// returning mean ns/op.
func measure(mintime time.Duration, maxIters int, fn func()) int64 {
	var total time.Duration
	iters := 0
	for total < mintime && iters < maxIters {
		start := time.Now()
		fn()
		total += time.Since(start)
		iters++
	}
	return total.Nanoseconds() / int64(iters)
}

func main() {
	presetName := flag.String("preset", "renren", "trace preset: facebook, renren, youtube, renren-100k, renren-1m")
	scale := flag.Float64("scale", 0.2, "trace scale factor (use 1 with the pre-sized renren-100k / renren-1m presets)")
	seed := flag.Int64("seed", 1, "generation seed")
	k := flag.Int("k", 200, "top-k prediction budget")
	workers := flag.Int("workers", 0, "parallel worker count to compare against serial (0 = GOMAXPROCS)")
	out := flag.String("out", "BENCH_predict.json", "output path")
	mintime := flag.Duration("mintime", 2*time.Second, "minimum sampling time per (algorithm, workers) cell")
	maxIters := flag.Int("maxiters", 50, "iteration cap per cell")
	compare := flag.String("compare", "", "previous BENCH_predict.json to diff the fresh results against")
	algsFlag := flag.String("algs", "", "comma-separated algorithm names to benchmark (default: the evaluated set plus SRW)")
	scaling := flag.String("scaling", "", "comma-separated presets for the pruned-vs-exhaustive local-metric sweep (e.g. renren-100k,renren-1m)")
	scalingAlgs := flag.String("scaling-algs", "", "local metrics for -scaling (default: the full 12-metric local family)")
	allPairs := flag.Bool("allpairs", false, "also time the O(N²) all-pairs baseline per -scaling row (expensive: N(N-1)/2 scored pairs per measurement)")
	shardsFlag := flag.String("shards", "", "comma-separated shard counts for the scatter/gather sweep (e.g. 2,4,8); simulates the cluster's source-sharded prediction in process")
	shardPresets := flag.String("shard-presets", "renren-100k", "comma-separated presets for the -shards and -partition sweeps")
	partitionFlag := flag.String("partition", "", "comma-separated shard counts for the per-shard partitioned-memory sweep (e.g. 4); uses -shard-presets")
	publishFlag := flag.String("publish", "", "comma-separated batch sizes for the delta-publish alloc/time sweep on the main preset trace (e.g. 64,256)")
	failOnRegress := flag.Bool("fail-on-regress", false, "exit nonzero when -compare finds a regression beyond 10%")
	failOnAllocRegress := flag.Bool("fail-on-alloc-regress", false, "exit nonzero when -compare finds a regression beyond 10% in the deterministic memory/publish rows only (resident bytes, allocs per publish) — machine-independent, safe for CI")
	short := flag.Bool("short", false, "smoke mode: one iteration per cell, local-only default algorithm set")
	obsOn := flag.Bool("obs", false, "collect telemetry and embed the dump in the output JSON")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address while benchmarking; implies -obs")
	progress := flag.Duration("progress", 0, "log a progress line to stderr at this interval; implies -obs")
	flag.Parse()

	if *short {
		// Smoke mode for CI: a single timed iteration per cell and a fast
		// local-metric default, so a 10⁵-node run fits a wall-clock budget.
		if *mintime > 100*time.Millisecond {
			*mintime = 100 * time.Millisecond
		}
		if *maxIters > 1 {
			*maxIters = 1
		}
		if *algsFlag == "" {
			*algsFlag = "CN,JC,AA"
		}
		if *scalingAlgs == "" {
			*scalingAlgs = "CN,JC,AA"
		}
	}

	stopProgress, err := obs.Boot(*obsOn, *debugAddr, *progress, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: obs: %v\n", err)
		os.Exit(2)
	}
	defer stopProgress()

	cfg, err := preset(*presetName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg = cfg.Scaled(*scale)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	g := tr.SnapshotAtEdge(cuts[len(cuts)-2].EdgeCount)

	par := *workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	counts := []int{1}
	if par != 1 {
		counts = append(counts, par)
	}

	o := output{
		Preset:     *presetName,
		Scale:      *scale,
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		K:          *k,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		GitSHA:     gitSHA(),
		Timestamp:  time.Now().UTC(),
	}
	algs := append(predict.All(), predict.SRW)
	if *algsFlag != "" {
		algs = nil
		for _, name := range strings.Split(*algsFlag, ",") {
			alg, err := predict.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: -algs: %v\n", err)
				os.Exit(2)
			}
			algs = append(algs, alg)
		}
	}
	for _, alg := range algs {
		var serialNs int64
		for _, w := range counts {
			opt := predict.DefaultOptions()
			opt.Workers = w
			// Warm once outside the timed loop (lazy generator state, cache
			// warmup) and sanity-check the algorithm produces output.
			if len(alg.Predict(g, *k, opt)) == 0 {
				fmt.Fprintf(os.Stderr, "%s produced no predictions\n", alg.Name())
				os.Exit(1)
			}
			ns := measure(*mintime, *maxIters, func() { alg.Predict(g, *k, opt) })
			speedup := 0.0
			if w == 1 {
				serialNs = ns
				speedup = 1.0
			} else if ns > 0 {
				speedup = float64(serialNs) / float64(ns)
			}
			o.Results = append(o.Results, result{
				Algorithm: alg.Name(),
				Workers:   w,
				NsPerOp:   ns,
				Speedup:   speedup,
			})
			fmt.Printf("%-8s workers=%-2d %12s/op  speedup=%.2fx\n",
				alg.Name(), w, time.Duration(ns), speedup)
		}
	}

	if *scaling != "" {
		presets := strings.Split(*scaling, ",")
		for i := range presets {
			presets[i] = strings.TrimSpace(presets[i])
		}
		algNames := localFamily
		if *scalingAlgs != "" {
			algNames = nil
			for _, name := range strings.Split(*scalingAlgs, ",") {
				algNames = append(algNames, strings.TrimSpace(name))
			}
		}
		if err := runScaling(&o, presets, algNames, *seed, *k, counts, *mintime, *maxIters, *allPairs); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}

	if *shardsFlag != "" {
		var shardCounts []int
		for _, s := range strings.Split(*shardsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "bench: -shards: bad count %q\n", s)
				os.Exit(2)
			}
			shardCounts = append(shardCounts, v)
		}
		presets := strings.Split(*shardPresets, ",")
		for i := range presets {
			presets[i] = strings.TrimSpace(presets[i])
		}
		algNames := localFamily
		if *scalingAlgs != "" {
			algNames = nil
			for _, name := range strings.Split(*scalingAlgs, ",") {
				algNames = append(algNames, strings.TrimSpace(name))
			}
		}
		if err := runSharded(&o, presets, algNames, *seed, *k, counts, shardCounts, *mintime, *maxIters); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}

	if *partitionFlag != "" {
		var shardCounts []int
		for _, s := range strings.Split(*partitionFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "bench: -partition: bad count %q\n", s)
				os.Exit(2)
			}
			shardCounts = append(shardCounts, v)
		}
		presets := strings.Split(*shardPresets, ",")
		for i := range presets {
			presets[i] = strings.TrimSpace(presets[i])
		}
		if err := runPartitionMemory(&o, presets, shardCounts, *seed, *k); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}

	if *publishFlag != "" {
		var batches []int
		for _, s := range strings.Split(*publishFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "bench: -publish: bad batch %q\n", s)
				os.Exit(2)
			}
			batches = append(batches, v)
		}
		if err := runPublish(&o, tr, *presetName, batches, *mintime, *maxIters); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}

	if obs.Enabled() {
		o.Telemetry = obs.Snapshot()
	}
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *compare != "" {
		old, err := loadOutput(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -compare: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("\ncomparing against %s (%s)\n", *compare, old.Timestamp.Format(time.RFC3339))
		n, det := compareOutputs(os.Stdout, old, &o, 0.90)
		if n > 0 {
			fmt.Printf("%d regression(s) beyond 10%% (%d deterministic)\n", n, det)
			if *failOnRegress || (*failOnAllocRegress && det > 0) {
				os.Exit(1)
			}
		}
	}
}

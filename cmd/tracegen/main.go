// Command tracegen generates a synthetic dynamic-network trace from one of
// the paper-analogue presets and writes it in the linkpred binary trace
// format.
//
// Usage:
//
//	tracegen -preset renren -scale 0.5 -seed 7 -out renren.trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"linkpred/internal/gen"
	"linkpred/internal/obs"
)

func main() {
	preset := flag.String("preset", "facebook", "trace preset: facebook, renren, youtube")
	scale := flag.Float64("scale", 1.0, "size scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "output file (default <preset>.trace)")
	metricsOut := flag.String("metrics-out", "", "write the telemetry dump as JSON to this path; implies -obs")
	obsOn := flag.Bool("obs", false, "enable in-process telemetry collection")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address; implies -obs")
	progress := flag.Duration("progress", 0, "log a progress line to stderr at this interval; implies -obs")
	flag.Parse()

	stopProgress, err := obs.Boot(*obsOn || *metricsOut != "", *debugAddr, *progress, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: obs: %v\n", err)
		os.Exit(2)
	}

	var cfg gen.Config
	switch *preset {
	case "facebook":
		cfg = gen.Facebook(*seed)
	case "renren":
		cfg = gen.Renren(*seed)
	case "youtube":
		cfg = gen.YouTube(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	cfg = cfg.Scaled(*scale)

	ctx, root := obs.StartSpan(context.Background(), "tracegen")
	tr, err := gen.GenerateCtx(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *preset + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: write: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: close: %v\n", err)
		os.Exit(1)
	}
	root.End()
	stopProgress()
	if *metricsOut != "" {
		if err := obs.WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: metrics-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges over %d days (delta %d → %d snapshots)\n",
		path, tr.NumNodes(), tr.NumEdges(), cfg.Days,
		gen.DefaultDelta(cfg), len(tr.Cuts(gen.DefaultDelta(cfg))))
}

// Command tracegen generates a synthetic dynamic-network trace from one of
// the paper-analogue presets and writes it in the linkpred binary trace
// format.
//
// Usage:
//
//	tracegen -preset renren -scale 0.5 -seed 7 -out renren.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"linkpred/internal/gen"
)

func main() {
	preset := flag.String("preset", "facebook", "trace preset: facebook, renren, youtube")
	scale := flag.Float64("scale", 1.0, "size scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "output file (default <preset>.trace)")
	flag.Parse()

	var cfg gen.Config
	switch *preset {
	case "facebook":
		cfg = gen.Facebook(*seed)
	case "renren":
		cfg = gen.Renren(*seed)
	case "youtube":
		cfg = gen.YouTube(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	cfg = cfg.Scaled(*scale)

	tr, err := gen.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *preset + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: write: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: close: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges over %d days (delta %d → %d snapshots)\n",
		path, tr.NumNodes(), tr.NumEdges(), cfg.Days,
		gen.DefaultDelta(cfg), len(tr.Cuts(gen.DefaultDelta(cfg))))
}

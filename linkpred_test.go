package linkpred

import (
	"strings"
	"testing"
)

// smallTrace is a shared fixture: a Renren-like trace small enough for
// fast facade-level tests.
func smallTrace(t *testing.T) (*Trace, GeneratorConfig) {
	t.Helper()
	cfg := RenrenConfig(5, 0.12)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, cfg
}

func TestFacadePredict(t *testing.T) {
	tr, cfg := smallTrace(t)
	cuts := tr.Cuts(SnapshotDelta(cfg))
	i := len(cuts) - 2
	g := tr.SnapshotAtEdge(cuts[i].EdgeCount)
	truth := TruthSet(g, tr.NewEdgesBetween(cuts[i], cuts[i+1]))
	k := len(truth)
	pred, err := Predict(g, "BRA", k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) == 0 || len(pred) > k {
		t.Fatalf("got %d predictions for k=%d", len(pred), k)
	}
	correct := CountCorrect(pred, truth)
	if ratio := AccuracyRatio(correct, k, g); ratio <= 1 {
		t.Errorf("BRA accuracy ratio = %v, want > 1", ratio)
	}
	if _, err := Predict(g, "NOPE", k, DefaultOptions()); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	names := Algorithms()
	if len(names) != 15 {
		t.Fatalf("algorithms = %v", names)
	}
	for _, n := range names {
		if _, err := AlgorithmByName(n); err != nil {
			t.Errorf("AlgorithmByName(%q): %v", n, err)
		}
	}
}

func TestFacadeFilteredPredict(t *testing.T) {
	tr, cfg := smallTrace(t)
	cuts := tr.Cuts(SnapshotDelta(cfg))
	i := len(cuts) - 2
	g := tr.SnapshotAtEdge(cuts[i].EdgeCount)
	tk := NewTracker(tr)
	fc := FilterConfigFor("renren")
	pred, err := FilteredPredict("BRA", g, tk, cuts[i].Time, 20, fc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) > 20 {
		t.Fatalf("got %d predictions", len(pred))
	}
}

func TestFacadeClassification(t *testing.T) {
	tr, cfg := smallTrace(t)
	cuts := tr.Cuts(SnapshotDelta(cfg))
	i := len(cuts) - 3
	pipe, res, err := TrainSVM(tr, cuts[i], cuts[i+1], cuts[i+2], 120, 3, 1000, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.K <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(res.String(), "over random") {
		t.Errorf("String() = %q", res.String())
	}
	mres, err := pipe.EvaluateMetricOnSample("BRA", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mres.K != res.K {
		t.Errorf("metric K %d != classifier K %d", mres.K, res.K)
	}
	if len(pipe.FeatureNames()) != 14 {
		t.Errorf("features = %v", pipe.FeatureNames())
	}
}

func TestFacadeBuildGraph(t *testing.T) {
	g := BuildGraph(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("graph = %v", g)
	}
	r := RandomPrediction(g, 1, 1)
	if len(r) != 1 {
		t.Fatalf("random = %v", r)
	}
}

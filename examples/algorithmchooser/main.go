// Algorithmchooser reproduces the §4.3 workflow as a library application:
// given a network snapshot, measure its structural features and choose a
// link prediction algorithm with a decision tree trained on snapshots of
// the three reference networks (Figure 6), then sanity-check the choice by
// running the chosen and a default algorithm side by side.
package main

import (
	"fmt"
	"log"

	linkpred "linkpred"
	"linkpred/internal/analysis"
	"linkpred/internal/experiments"
)

func main() {
	// Train the chooser on snapshot transitions of the three reference
	// networks (reduced scale for demo runtimes).
	c := experiments.TestConfig()
	c.Scale = 0.2
	nets := experiments.LoadNetworks(c)
	fig6 := experiments.Figure6(c, nets)
	if fig6.Tree == nil {
		log.Fatal("decision tree training failed")
	}
	fmt.Println("learned decision rules (features → best algorithm):")
	for _, rule := range fig6.Rules {
		fmt.Printf("  %s\n", rule)
	}

	// A "new" network the chooser has not seen: a YouTube-like trace with
	// a different seed and size.
	cfg := linkpred.YouTubeConfig(99, 0.25)
	trace, err := linkpred.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cuts := trace.Cuts(linkpred.SnapshotDelta(cfg))
	i := len(cuts) - 2
	g := trace.SnapshotAtEdge(cuts[i].EdgeCount)

	feats := analysis.Features(g, 250, 1)
	fmt.Println("\nnew network features:")
	for j, name := range analysis.FeatureNames {
		fmt.Printf("  %-14s %.3g\n", name, feats[j])
	}
	choice := fig6.AlgClasses[fig6.Tree.PredictClass(feats)]
	fmt.Printf("\nchooser recommends: %s\n", choice)

	// Validate the recommendation on the next transition.
	truth := linkpred.TruthSet(g, trace.NewEdgesBetween(cuts[i], cuts[i+1]))
	k := len(truth)
	opt := linkpred.DefaultOptions()
	for _, name := range []string{choice, "JC"} {
		pred, err := linkpred.Predict(g, name, k, opt)
		if err != nil {
			log.Fatal(err)
		}
		correct := linkpred.CountCorrect(pred, truth)
		fmt.Printf("  %-7s accuracy ratio %.1fx (%d/%d correct)\n",
			name, linkpred.AccuracyRatio(correct, k, g), correct, k)
	}
}

// Temporalfilters demonstrates §6 end to end: measure the temporal
// separations between pairs that will and will not connect, then show the
// accuracy gain from pruning the candidate space with the temporal filter
// across several algorithms.
package main

import (
	"fmt"
	"log"

	linkpred "linkpred"
	"linkpred/internal/temporal"
)

func main() {
	cfg := linkpred.RenrenConfig(11, 0.2)
	trace, err := linkpred.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cuts := trace.Cuts(linkpred.SnapshotDelta(cfg))
	i := len(cuts) - 2
	g := trace.SnapshotAtEdge(cuts[i].EdgeCount)
	now := cuts[i].Time
	tk := linkpred.NewTracker(trace)

	// §6.1: how separable are positive and negative pairs in time?
	newEdges := trace.NewEdgesBetween(cuts[i], cuts[i+1])
	pos, neg := temporal.PairSamples(g, newEdges, 4000, 1)
	posIdle := temporal.NewCDF(tk.ActiveIdleDays(pos, now))
	negIdle := temporal.NewCDF(tk.ActiveIdleDays(neg, now))
	fmt.Printf("pairs that connect next snapshot: %.0f%% have an endpoint active within 3 days\n",
		100*posIdle.FractionBelow(3))
	fmt.Printf("pairs that do not:                %.0f%%\n", 100*negIdle.FractionBelow(3))
	posGap := temporal.NewCDF(tk.CNGaps(g, pos, now))
	negGap := temporal.NewCDF(tk.CNGaps(g, neg, now))
	fmt.Printf("positive pairs gaining a common neighbor within 10 days: %.0f%% (negative: %.0f%%)\n\n",
		100*posGap.FractionBelow(10), 100*negGap.FractionBelow(10))

	// §6.2: the filter as a prediction booster.
	truth := linkpred.TruthSet(g, newEdges)
	k := len(truth)
	fc := linkpred.FilterConfigFor("renren")
	opt := linkpred.DefaultOptions()
	fmt.Printf("%-6s %12s %12s %12s\n", "metric", "basic", "filtered", "gain")
	for _, name := range []string{"JC", "BCN", "BRA", "LP", "SP"} {
		basic, err := linkpred.Predict(g, name, k, opt)
		if err != nil {
			log.Fatal(err)
		}
		filtered, err := linkpred.FilteredPredict(name, g, tk, now, k, fc, opt)
		if err != nil {
			log.Fatal(err)
		}
		rb := linkpred.AccuracyRatio(linkpred.CountCorrect(basic, truth), k, g)
		rf := linkpred.AccuracyRatio(linkpred.CountCorrect(filtered, truth), k, g)
		gain := "-"
		if rb > 0 {
			gain = fmt.Sprintf("%.1fx", rf/rb)
		}
		fmt.Printf("%-6s %11.1fx %11.1fx %12s\n", name, rb, rf, gain)
	}
}

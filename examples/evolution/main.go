// Evolution replays a dynamic-network trace and reports how its structure
// changes as it grows — the measurements behind the paper's Figures 1-4 —
// together with community structure and the λ₂ series that §4.2 ties to
// prediction accuracy. It also shows CSV interchange: pass a real edge list
// with -csv to analyze your own data.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	linkpred "linkpred"
)

func main() {
	csvPath := flag.String("csv", "", "analyze a real u,v,timestamp edge list instead of a synthetic trace")
	flag.Parse()

	var trace *linkpred.Trace
	var err error
	if *csvPath != "" {
		f, ferr := os.Open(*csvPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer f.Close()
		trace, err = linkpred.ReadTraceCSV(f, *csvPath)
	} else {
		trace, err = linkpred.Generate(linkpred.YouTubeConfig(21, 0.3))
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %q: %d nodes, %d edges\n\n", trace.Name, trace.NumNodes(), trace.NumEdges())

	delta := trace.NumEdges() / 12
	cuts := trace.Cuts(delta)
	fmt.Printf("%8s %8s %10s %8s %8s %8s\n", "edges", "nodes", "avg deg", "assort", "λ₂", "comms")
	for i, cut := range cuts {
		g := trace.SnapshotAtEdge(cut.EdgeCount)
		l2 := 0.0
		if i+1 < len(cuts) {
			l2 = linkpred.Lambda2(g, trace.NewEdgesBetween(cut, cuts[i+1]))
		}
		comms := linkpred.DetectCommunities(g, 12, 1)
		deg := 0.0
		if g.NumNodes() > 0 {
			deg = 2 * float64(g.NumEdges()) / float64(g.NumNodes())
		}
		fmt.Printf("%8d %8d %10.2f %8.3f %8.2f %8d\n",
			g.NumEdges(), g.NumNodes(), deg, linkpred.Assortativity(g), l2, comms.Count)
	}

	// Whole-list quality of a predictor on the final transition, using the
	// AUC the paper contrasts with its top-k accuracy ratio.
	last := len(cuts) - 2
	g := trace.SnapshotAtEdge(cuts[last].EdgeCount)
	truth := linkpred.TruthSet(g, trace.NewEdgesBetween(cuts[last], cuts[last+1]))
	if len(truth) == 0 {
		fmt.Println("\nno predictable new edges in the final transition")
		return
	}
	var pairs []linkpred.Pair
	var labels []bool
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		for v := u + 1; int(v) < g.NumNodes(); v += 7 { // sparse sample of the pair space
			if !g.HasEdge(u, v) {
				pairs = append(pairs, linkpred.Pair{U: u, V: v})
			}
		}
	}
	alg, err := linkpred.AlgorithmByName("AA")
	if err != nil {
		log.Fatal(err)
	}
	scores := alg.ScorePairs(g, pairs, linkpred.DefaultOptions())
	for _, p := range pairs {
		labels = append(labels, truth[p.Key()])
	}
	fmt.Printf("\nAA whole-list AUC over a sampled pair space: %.3f\n", linkpred.AUC(scores, labels))
	ranked := linkpred.RankLabels(pairs, scores, truth, 1)
	prec := linkpred.PrecisionAtK(ranked, []int{10, 100, 1000})
	fmt.Printf("precision@10 %.3f  precision@100 %.3f  precision@1000 %.3f\n", prec[0], prec[1], prec[2])
}

// Quickstart: generate a dynamic social-network trace, predict its next
// links with a metric-based algorithm, and score the prediction against
// the ground truth — the paper's §4.1 experiment in ~40 lines.
package main

import (
	"fmt"
	"log"

	linkpred "linkpred"
)

func main() {
	// A Renren-like trace at 20% of the reference size: ~1k nodes growing
	// to ~12k edges over a simulated year.
	cfg := linkpred.RenrenConfig(42, 0.2)
	trace, err := linkpred.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q: %d nodes, %d edges\n", cfg.Name, trace.NumNodes(), trace.NumEdges())

	// Discretize into snapshots with a constant number of new edges each.
	cuts := trace.Cuts(linkpred.SnapshotDelta(cfg))
	last := len(cuts) - 2
	g := trace.SnapshotAtEdge(cuts[last].EdgeCount)

	// Ground truth: the links actually created in the next snapshot among
	// nodes that already exist.
	truth := linkpred.TruthSet(g, trace.NewEdgesBetween(cuts[last], cuts[last+1]))
	k := len(truth)
	fmt.Printf("predicting the next %d links on a %d-node snapshot\n", k, g.NumNodes())

	opt := linkpred.DefaultOptions()
	for _, name := range []string{"BRA", "AA", "JC", "PA"} {
		pred, err := linkpred.Predict(g, name, k, opt)
		if err != nil {
			log.Fatal(err)
		}
		correct := linkpred.CountCorrect(pred, truth)
		fmt.Printf("  %-4s %3d/%d correct → %.1fx better than random\n",
			name, correct, k, linkpred.AccuracyRatio(correct, k, g))
	}

	// The same experiment with the random baseline for reference.
	rnd := linkpred.RandomPrediction(g, k, 1)
	fmt.Printf("  rand %3d/%d correct\n", linkpred.CountCorrect(rnd, truth), k)
}

// Friendrecommender builds per-user "people you may know" suggestions —
// the application the paper's introduction motivates — and shows how the
// §6 temporal filters sharpen them by removing dormant candidates.
package main

import (
	"fmt"
	"log"
	"sort"

	linkpred "linkpred"
)

func main() {
	cfg := linkpred.FacebookConfig(7, 0.2)
	trace, err := linkpred.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cuts := trace.Cuts(linkpred.SnapshotDelta(cfg))
	now := cuts[len(cuts)-1]
	g := trace.SnapshotAtEdge(now.EdgeCount)
	opt := linkpred.DefaultOptions()

	// Global candidate ranking once; then bucket suggestions per user.
	// (A production system would push per-user scoring; the global top-k
	// demonstrates the ranked output the algorithms provide.)
	pred, err := linkpred.Predict(g, "BRA", 400, opt)
	if err != nil {
		log.Fatal(err)
	}
	perUser := map[linkpred.NodeID][]linkpred.Pair{}
	for _, p := range pred {
		perUser[p.U] = append(perUser[p.U], p)
		perUser[p.V] = append(perUser[p.V], p)
	}

	// Pick the three users with the most suggestions for the demo.
	type bucket struct {
		user linkpred.NodeID
		recs []linkpred.Pair
	}
	var buckets []bucket
	for u, recs := range perUser {
		buckets = append(buckets, bucket{u, recs})
	}
	sort.Slice(buckets, func(i, j int) bool {
		if len(buckets[i].recs) != len(buckets[j].recs) {
			return len(buckets[i].recs) > len(buckets[j].recs)
		}
		return buckets[i].user < buckets[j].user
	})

	fmt.Println("top raw recommendations (metric: BRA)")
	for _, b := range buckets[:3] {
		fmt.Printf("  user %d (degree %d):", b.user, g.Degree(b.user))
		for i, r := range b.recs {
			if i == 5 {
				break
			}
			other := r.U
			if other == b.user {
				other = r.V
			}
			fmt.Printf(" %d", other)
		}
		fmt.Println()
	}

	// Temporal filtering: suppress recommendations involving users who
	// have gone dormant — the paper's biggest single accuracy lever.
	tk := linkpred.NewTracker(trace)
	fc := linkpred.FilterConfigFor("facebook")
	surviving := 0
	for _, p := range pred {
		if tk.Pass(g, p.U, p.V, now.Time, fc) {
			surviving++
		}
	}
	fmt.Printf("\ntemporal filter: %d of the %d raw candidates involve active pairs\n",
		surviving, len(pred))
	filtered, err := linkpred.FilteredPredict("BRA", g, tk, now.Time, 400, fc, opt)
	if err != nil {
		log.Fatal(err)
	}
	show := 5
	if len(filtered) < show {
		show = len(filtered)
	}
	fmt.Println("top filtered pairs:")
	for _, p := range filtered[:show] {
		fmt.Printf("  %d -- %d (score %.3g)\n", p.U, p.V, p.Score)
	}
}
